// Manager core: struct-of-arrays node store, mask-based unique subtables,
// reference counting, GC, structural queries, and inter-manager transfer
// ("BDD mapping").
#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace bds::bdd {

namespace detail {
void invalid_handle(const char* op) {
  std::fprintf(stderr,
               "bds: fatal: %s called on an empty Bdd handle (or on operands "
               "from different managers)\n",
               op);
  std::abort();
}

void invalid_argument(const char* op, const char* what) {
  std::fprintf(stderr, "bds: fatal: %s: %s\n", op, what);
  std::abort();
}
}  // namespace detail

util::CounterList telemetry_counters(const ManagerStats& stats,
                                     const ManagerStats* baseline) {
  util::CounterList out;
  // Monotonic counters: a baseline turns them into this-phase deltas.
  const auto delta = [&](const char* key, std::size_t now, std::size_t base) {
    out.emplace_back(key, static_cast<double>(now - base));
  };
  // Level gauges and high-watermarks: always the current snapshot (a
  // watermark difference has no meaning).
  const auto gauge = [&](const char* key, std::size_t value) {
    out.emplace_back(key, static_cast<double>(value));
  };
  const ManagerStats zero;
  const ManagerStats& b = baseline != nullptr ? *baseline : zero;
  gauge("live_nodes", stats.live_nodes);
  gauge("peak_live_nodes", stats.peak_live_nodes);
  delta("gc_runs", stats.gc_runs, b.gc_runs);
  delta("unique_lookups", stats.unique_lookups, b.unique_lookups);
  delta("cache_lookups", stats.cache_lookups, b.cache_lookups);
  delta("cache_hits", stats.cache_hits, b.cache_hits);
  for (std::size_t op = 0; op < kNumCacheOps; ++op) {
    const std::string prefix = std::string("cache_") + kCacheOpNames[op];
    out.emplace_back(prefix + "_lookups",
                     static_cast<double>(stats.cache_op_lookups[op] -
                                         b.cache_op_lookups[op]));
    out.emplace_back(
        prefix + "_hits",
        static_cast<double>(stats.cache_op_hits[op] - b.cache_op_hits[op]));
  }
  gauge("cache_entries", stats.cache_entries);
  delta("cache_resizes", stats.cache_resizes, b.cache_resizes);
  delta("cache_dead_evictions", stats.cache_dead_evictions,
        b.cache_dead_evictions);
  delta("reorderings", stats.reorderings, b.reorderings);
  gauge("saturated_refs", stats.saturated_refs);
  gauge("memory_bytes", stats.memory_bytes);
  gauge("peak_memory_bytes", stats.peak_memory_bytes);
  return out;
}

namespace {
// Computed-table growth ceiling; the start size and subtable sizing
// constants live in the class (serialize.cpp needs them too).
constexpr std::size_t kCacheMaxEntries = 1u << 20;

std::uint64_t cache_hash(std::uint64_t key_lo, std::uint64_t key_hi) {
  std::uint64_t h =
      key_lo * 0x9e3779b97f4a7c15ULL ^ key_hi * 0xff51afd7ed558ccdULL;
  return h ^ (h >> 29);
}
}  // namespace

std::size_t Manager::cache_set_base(std::uint64_t key_lo,
                                    std::uint64_t key_hi) const {
  // cache_.size() is a power of two >= kCacheInitialEntries, so size()/2
  // is the (power-of-two) set count and the mask selects a set; << 1 turns
  // the set index into the index of its MRU way.
  return (cache_hash(key_lo, key_hi) & (cache_.size() / 2 - 1)) << 1;
}

Manager::Manager(std::uint32_t num_vars) {
  vars_.reserve(kArenaReserve);
  thens_.reserve(kArenaReserve);
  elses_.reserve(kArenaReserve);
  nexts_.reserve(kArenaReserve);
  refs_.reserve(kArenaReserve);
  // Slot 0 is the terminal 1, pinned forever.
  vars_.push_back(kVarTerminal);
  thens_.push_back(Edge::one());
  elses_.push_back(Edge::one());
  nexts_.push_back(kNil);
  refs_.push_back(1);
  stats_.live_nodes = 1;
  stats_.peak_live_nodes = 1;
  stats_.allocated_nodes = 1;
  cache_.resize(kCacheInitialEntries);
  stats_.cache_entries = cache_.size();
  ensure_vars(num_vars);
  // Publish the pristine footprint immediately (reset() does the same), so
  // a fresh and a pool-recycled manager report identical gauges from the
  // first stats() read on, not just after the first operation.
  update_memory_stats();
}

Manager::~Manager() = default;

Var Manager::new_var() {
  const Var v = static_cast<Var>(var2level_.size());
  var2level_.push_back(static_cast<std::uint32_t>(level2var_.size()));
  level2var_.push_back(v);
  Subtable st;
  st.buckets.assign(kInitialBuckets, kNil);
  st.mask = kInitialBuckets - 1;
  subtable_bucket_bytes_ += kInitialBuckets * sizeof(std::uint32_t);
  subtables_.push_back(std::move(st));
  // Keep the footprint gauge current across variable growth, so a pooled
  // manager re-widened by ensure_vars reports the same memory_bytes as a
  // fresh Manager(n) before any operation runs.
  update_memory_stats();
  return v;
}

void Manager::ensure_vars(std::uint32_t n) {
  while (num_vars() < n) new_var();
}

std::uint32_t Manager::edge_level(Edge e) const {
  const Var v = vars_[e.node()];
  return v == kVarTerminal ? kLevelTerminal : var2level_[v];
}

Bdd Manager::constant(bool value) {
  return Bdd(*this, value ? Edge::one() : Edge::zero());
}
Bdd Manager::one() { return constant(true); }
Bdd Manager::zero() { return constant(false); }

Bdd Manager::var(Var v) {
  maybe_gc();
  return Bdd(*this, mk(v, Edge::one(), Edge::zero()));
}
Bdd Manager::nvar(Var v) {
  maybe_gc();
  return Bdd(*this, mk(v, Edge::zero(), Edge::one()));
}
Bdd Manager::wrap(Edge e) { return Bdd(*this, e); }

// ----- unique table ----------------------------------------------------------

std::uint32_t Manager::hash_triple(Var v, Edge hi, Edge lo,
                                   std::uint32_t mask) {
  std::uint64_t h = (static_cast<std::uint64_t>(hi.bits()) << 32) | lo.bits();
  h ^= static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ULL;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<std::uint32_t>(h) & mask;
}

std::uint32_t Manager::alloc_node(Var v, Edge hi, Edge lo) {
  std::uint32_t idx;
  if (!free_list_.empty()) {
    idx = free_list_.back();
    free_list_.pop_back();
  } else {
    idx = arena_size();
    vars_.emplace_back();
    thens_.emplace_back();
    elses_.emplace_back();
    nexts_.emplace_back();
    refs_.emplace_back();
    stats_.allocated_nodes = vars_.size();
  }
  vars_[idx] = v;
  thens_[idx] = hi;
  elses_[idx] = lo;
  nexts_[idx] = kNil;
  refs_[idx] = 0;
  // The node holds references to its children for its whole lifetime.
  ref(hi);
  ref(lo);
  return idx;
}

void Manager::free_node(std::uint32_t idx) {
  vars_[idx] = kVarTerminal;
  nexts_[idx] = kNil;
  free_list_.push_back(idx);
}

void Manager::grow_subtable(Subtable& st) {
  std::vector<std::uint32_t> old = std::move(st.buckets);
  st.buckets.assign(old.size() * 2, kNil);
  st.mask = static_cast<std::uint32_t>(st.buckets.size()) - 1;
  subtable_bucket_bytes_ += old.size() * sizeof(std::uint32_t);
  for (std::uint32_t head : old) {
    while (head != kNil) {
      const std::uint32_t next = nexts_[head];
      const std::uint32_t b =
          hash_triple(vars_[head], thens_[head], elses_[head], st.mask);
      nexts_[head] = st.buckets[b];
      st.buckets[b] = head;
      head = next;
    }
  }
}

void Manager::unique_insert(std::uint32_t idx) {
  Subtable& st = subtables_[vars_[idx]];
  if (st.count + 1 > st.buckets.size() * 4) grow_subtable(st);
  const std::uint32_t b =
      hash_triple(vars_[idx], thens_[idx], elses_[idx], st.mask);
  nexts_[idx] = st.buckets[b];
  st.buckets[b] = idx;
  ++st.count;
}

void Manager::unique_remove(std::uint32_t idx) {
  Subtable& st = subtables_[vars_[idx]];
  const std::uint32_t b =
      hash_triple(vars_[idx], thens_[idx], elses_[idx], st.mask);
  std::uint32_t* link = &st.buckets[b];
  while (*link != idx) {
    assert(*link != kNil && "node missing from unique table");
    link = &nexts_[*link];
  }
  *link = nexts_[idx];
  nexts_[idx] = kNil;
  --st.count;
}

Edge Manager::mk(Var v, Edge hi, Edge lo) {
  assert(v < num_vars());
  assert(edge_level(hi) > var2level_[v] && edge_level(lo) > var2level_[v]);
  if (hi == lo) return hi;
  // Canonical form: the hi edge must be regular.
  bool out_complement = false;
  if (hi.complemented()) {
    out_complement = true;
    hi = !hi;
    lo = !lo;
  }
  ++stats_.unique_lookups;
  const Subtable& st = subtables_[v];
  const std::uint32_t b = hash_triple(v, hi, lo, st.mask);
  for (std::uint32_t i = st.buckets[b]; i != kNil; i = nexts_[i]) {
    if (thens_[i] == hi && elses_[i] == lo) {
      return Edge(i, out_complement);
    }
  }
  const std::uint32_t idx = alloc_node(v, hi, lo);
  unique_insert(idx);
  return Edge(idx, out_complement);
}

// ----- reference counting / GC ----------------------------------------------

void Manager::ref(Edge e) {
  std::uint16_t& r = refs_[e.node()];
  if (r == kRefSaturated) return;  // pinned
  if (r++ == 0) {
    ++stats_.live_nodes;
    stats_.peak_live_nodes = std::max(stats_.peak_live_nodes, stats_.live_nodes);
  }
  // Count the saturation transition exactly once per node: deref() never
  // touches a saturated count, so the counter is sticky by construction and
  // names the nodes gc() can never reclaim.
  if (r == kRefSaturated) ++stats_.saturated_refs;
}

void Manager::deref(Edge e) {
  std::uint16_t& r = refs_[e.node()];
  if (r == kRefSaturated) return;
  assert(r > 0 && "deref of dead node");
  if (--r == 0) --stats_.live_nodes;
}

void Manager::gc() {
  ++stats_.gc_runs;
  // Sweep dead nodes; freeing one may kill its children, so iterate to a
  // fixed point. A worklist seeded from all currently-dead nodes suffices
  // because deref() on a child only ever transitions live -> dead here.
  //
  // Seed by walking the unique-subtable chains: every allocated node is
  // chained, so the chains are exactly the free-list complement, and a
  // churned arena (mostly free slots) no longer pays a full-arena scan.
  // Sorting the candidates ascending reproduces the index-order seeding of
  // the old arena scan, so the reclamation order -- and with it the free
  // list and every subsequent allocation -- is byte-identical.
  std::vector<std::uint32_t> dead;
  for (const Subtable& st : subtables_) {
    for (std::uint32_t head : st.buckets) {
      for (std::uint32_t i = head; i != kNil; i = nexts_[i]) {
        if (refs_[i] == 0) dead.push_back(i);
      }
    }
  }
  std::sort(dead.begin(), dead.end());
  std::size_t freed = 0;
  while (!dead.empty()) {
    const std::uint32_t idx = dead.back();
    dead.pop_back();
    if (vars_[idx] == kVarTerminal || refs_[idx] != 0) {
      continue;  // already freed/revived
    }
    const Edge hi = thens_[idx];
    const Edge lo = elses_[idx];
    unique_remove(idx);
    free_node(idx);
    ++freed;
    deref(hi);
    deref(lo);
    if (!hi.is_constant() && refs_[hi.node()] == 0) dead.push_back(hi.node());
    if (!lo.is_constant() && refs_[lo.node()] == 0) dead.push_back(lo.node());
  }
  // Evict only the computed-table entries that reference reclaimed nodes;
  // hot results over the surviving graph stay warm across collections.
  if (freed > 0) cache_invalidate_dead();
  update_memory_stats();
}

void Manager::maybe_gc() {
  const std::size_t in_tables = arena_size() - free_list_.size();
  if (in_tables > gc_threshold_ && in_tables > stats_.live_nodes * 2) {
    gc();
    // If the arena is still mostly live, raise the bar to avoid thrashing.
    if (arena_size() - free_list_.size() > gc_threshold_) {
      gc_threshold_ = (arena_size() - free_list_.size()) * 2;
    }
  }
  update_memory_stats();
  // Handle-level entry is a safe point: no operation is in flight, so a
  // BudgetExceeded here unwinds with every structure consistent.
  budget_checkpoint();
}

void Manager::budget_check_slow() {
  // live_nodes counts referenced nodes only (ref-0 garbage of an unwound
  // operation does not count against the ceiling); memory_bytes is the
  // arena+table footprint maintained by update_memory_stats().
  budget_->check(stats_.live_nodes, stats_.memory_bytes, budget_ticks_);
  // The tick is 0 exactly when check() just wrapped its amortization
  // window (once per kDeadlineCheckInterval checks) -- the agreed
  // low-frequency moment for telemetry gauge samples.
  if (gauge_ != nullptr && budget_ticks_ == 0) {
    gauge_->sample(stats_.live_nodes, stats_.memory_bytes);
  }
}

void Manager::update_memory_stats() {
  // This runs on every handle-level operation (via maybe_gc), so it must
  // not walk the subtables: with n variables that turns every op into O(n)
  // and long operation streams quadratic. The bucket footprint is tracked
  // incrementally at the two sites that allocate buckets (new_var,
  // grow_subtable) instead. The SoA arrays grow in lockstep, so their
  // footprint is one capacity times the per-slot constants plus the
  // demand-grown traversal scratch.
  const std::size_t bytes =
      vars_.capacity() * (kNodeStoreBytesPerNode + kNodeRefBytesPerNode) +
      visits_.capacity() * kNodeScratchBytesPerNode +
      free_list_.capacity() * sizeof(std::uint32_t) +
      cache_.capacity() * sizeof(CacheEntry) + subtable_bucket_bytes_;
  stats_.memory_bytes = bytes;
  stats_.peak_memory_bytes = std::max(stats_.peak_memory_bytes, bytes);
}

// ----- computed table ---------------------------------------------------------
// The table is 2-way set-associative: `cache_` is viewed as size()/2 sets of
// two adjacent entries. Slot 0 of a set is the MRU way -- lookups probe it
// first and promote a slot-1 hit by swapping, stores shift slot 0 down and
// claim it -- so two hot operations that collide on one set coexist instead
// of evicting each other on every apply step (the direct-mapped failure
// mode). All indexing below goes through cache_set_base().

Edge Manager::cache_lookup(CacheOp op, Edge f, Edge g, Edge h, bool& hit) {
  // Every nonterminal apply step (ite/restrict/constrain/compose/exists)
  // passes through here exactly once, and the recursion holds only raw
  // edges: aborting leaves ref-0 garbage for the next gc(), nothing else.
  // That makes this the natural amortized budget check site. Reordering's
  // swap_levels() never reaches it (it builds through mk() directly), so
  // the budget cannot fire mid-swap.
  budget_checkpoint();
  cache_maybe_grow();
  ++stats_.cache_lookups;
  ++stats_.cache_op_lookups[static_cast<std::uint32_t>(op) - 1];
  const std::uint64_t key_lo =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(op)) << 32) |
      f.bits();
  const std::uint64_t key_hi =
      (static_cast<std::uint64_t>(g.bits()) << 32) | h.bits();
  CacheEntry* set = &cache_[cache_set_base(key_lo, key_hi)];
  if (set[0].key_lo == key_lo && set[0].key_hi == key_hi) {
    ++stats_.cache_hits;
    ++stats_.cache_op_hits[static_cast<std::uint32_t>(op) - 1];
    hit = true;
    return set[0].result;
  }
  if (set[1].key_lo == key_lo && set[1].key_hi == key_hi) {
    ++stats_.cache_hits;
    ++stats_.cache_op_hits[static_cast<std::uint32_t>(op) - 1];
    hit = true;
    std::swap(set[0], set[1]);  // promote to the MRU way
    return set[0].result;
  }
  hit = false;
  return Edge::one();
}

void Manager::cache_store(CacheOp op, Edge f, Edge g, Edge h, Edge result) {
  const std::uint64_t key_lo =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(op)) << 32) |
      f.bits();
  const std::uint64_t key_hi =
      (static_cast<std::uint64_t>(g.bits()) << 32) | h.bits();
  CacheEntry* set = &cache_[cache_set_base(key_lo, key_hi)];
  // Replace LRU-of-2: demote the MRU way unless it already holds this key
  // (re-store after a recomputation), then claim the MRU slot.
  if (!(set[0].key_lo == key_lo && set[0].key_hi == key_hi)) set[1] = set[0];
  set[0].key_lo = key_lo;
  set[0].key_hi = key_hi;
  set[0].result = result;
}

void Manager::cache_clear() {
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
}

void Manager::cache_maybe_grow() {
  // Evaluate the growth policy once per window of 2x-capacity lookups: if
  // at least a quarter of them hit, the working set is bigger than the
  // table -- double it (rehashing the surviving entries) up to the ceiling.
  const std::size_t lookups = stats_.cache_lookups - cache_lookups_at_resize_;
  if (lookups < cache_.size() * 2) return;
  const std::size_t hits = stats_.cache_hits - cache_hits_at_resize_;
  cache_lookups_at_resize_ = stats_.cache_lookups;
  cache_hits_at_resize_ = stats_.cache_hits;
  if (cache_.size() >= kCacheMaxEntries || hits * 4 < lookups) return;
  std::vector<CacheEntry> old = std::move(cache_);
  cache_.assign(old.size() * 2, CacheEntry{});
  // Rehash the survivors into their new sets. Walking the old ways in MRU
  // order per set (slot 0 before slot 1) and inserting store-style keeps
  // each new set's MRU/LRU ordering consistent with access recency.
  for (std::size_t base = 0; base < old.size(); base += 2) {
    for (std::size_t way = 0; way < 2; ++way) {
      const CacheEntry& e = old[base + way];
      if (e.key_lo == ~0ULL && e.key_hi == ~0ULL) continue;
      CacheEntry* set = &cache_[cache_set_base(e.key_lo, e.key_hi)];
      if (set[0].key_lo == ~0ULL && set[0].key_hi == ~0ULL) {
        set[0] = e;
      } else {
        set[1] = e;
      }
    }
  }
  ++stats_.cache_resizes;
  stats_.cache_entries = cache_.size();
  update_memory_stats();
}

bool Manager::node_is_free(std::uint32_t idx) const {
  // Free slots are stamped kVarTerminal by free_node(); node 0 is the
  // pinned terminal. Indices past the arena cannot name a live node either
  // (they come from Var-encoded cache keys, which this check may treat as
  // node references -- a conservative eviction, never an unsafe keep).
  return idx != 0 && (idx >= arena_size() || vars_[idx] == kVarTerminal);
}

void Manager::cache_invalidate_dead() {
  for (CacheEntry& e : cache_) {
    if (e.key_lo == ~0ULL && e.key_hi == ~0ULL) continue;
    // Keys pack (op, f) and (g, h); each Lit holds the node index << 1.
    const auto f = static_cast<std::uint32_t>(e.key_lo) >> 1;
    const auto g = static_cast<std::uint32_t>(e.key_hi >> 32) >> 1;
    const auto h = static_cast<std::uint32_t>(e.key_hi) >> 1;
    if (node_is_free(f) || node_is_free(g) || node_is_free(h) ||
        node_is_free(e.result.node())) {
      e = CacheEntry{};
      ++stats_.cache_dead_evictions;
    }
  }
}

// ----- structural queries ------------------------------------------------------

Var Manager::top_var(Edge e) const { return vars_[e.node()]; }

Edge Manager::hi_of(Edge e) const { return thens_[e.node()] ^ e.complemented(); }
Edge Manager::lo_of(Edge e) const { return elses_[e.node()] ^ e.complemented(); }

Edge Manager::cofactor(Edge f, Var v, bool value) {
  // Cofactor by composing with a constant; cheap dedicated recursion.
  const std::uint32_t vlevel = var2level_[v];
  if (edge_level(f) > vlevel) return f;
  if (top_var(f) == v) return value ? hi_of(f) : lo_of(f);
  return compose_rec(f, v, value ? Edge::one() : Edge::zero(), vlevel);
}

std::uint32_t Manager::begin_visit() const {
  // A node is "seen" in the current traversal iff its stamp equals the
  // epoch; bumping the epoch unmarks every node at once. The stamp array is
  // demand-grown here (new slots start at 0, which can never equal a live
  // epoch). On the (rare) 32-bit wrap, reset all stamps so stale marks
  // cannot alias.
  if (visits_.size() < vars_.size()) visits_.resize(vars_.size(), 0);
  if (++visit_epoch_ == 0) {
    std::fill(visits_.begin(), visits_.end(), 0);
    std::fill(var_visit_.begin(), var_visit_.end(), 0);
    visit_epoch_ = 1;
  }
  return visit_epoch_;
}

std::size_t Manager::count_nodes(Edge e, std::uint32_t epoch) const {
  // Stamped DFS; cost is proportional to the function's size, not the
  // arena's (eliminate calls this in a tight loop on large managers), and
  // no per-call containers are allocated. Hot loads go through raw array
  // pointers: only thens_/elses_/visits_ are touched per node.
  std::size_t n = 0;
  const Edge* thens = thens_.data();
  const Edge* elses = elses_.data();
  std::uint32_t* visits = visits_.data();
  std::vector<std::uint32_t>& stack = visit_stack_;
  stack.clear();
  const std::uint32_t root = e.node();
  if (visits[root] != epoch) {
    visits[root] = epoch;
    ++n;
    if (root != 0) stack.push_back(root);
  }
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    const std::uint32_t hi = thens[idx].node();
    const std::uint32_t lo = elses[idx].node();
    if (visits[hi] != epoch) {
      visits[hi] = epoch;
      ++n;
      if (hi != 0) stack.push_back(hi);
    }
    if (visits[lo] != epoch) {
      visits[lo] = epoch;
      ++n;
      if (lo != 0) stack.push_back(lo);
    }
  }
  return n;
}

std::size_t Manager::size(Edge e) const {
  return count_nodes(e, begin_visit());
}

std::size_t Manager::size(const std::vector<Edge>& roots) const {
  const std::uint32_t epoch = begin_visit();
  std::size_t n = 0;
  for (Edge e : roots) n += count_nodes(e, epoch);
  return n;
}

std::vector<Var> Manager::support(Edge e) const {
  const std::uint32_t epoch = begin_visit();
  // Per-var stamps dedupe variables during the walk, so the result holds
  // one entry per support variable (not per node) and the final sort is
  // over the support, which is tiny next to the node count.
  var_visit_.resize(var2level_.size(), 0);
  const Edge* thens = thens_.data();
  const Edge* elses = elses_.data();
  const Var* vars = vars_.data();
  std::uint32_t* visits = visits_.data();
  std::uint32_t* var_seen = var_visit_.data();
  std::vector<std::uint32_t>& stack = visit_stack_;
  stack.clear();
  std::vector<Var> result;
  visits[0] = epoch;  // never record the terminal
  const std::uint32_t root = e.node();
  if (visits[root] != epoch) {
    visits[root] = epoch;
    stack.push_back(root);
  }
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    const Var v = vars[idx];
    if (var_seen[v] != epoch) {
      var_seen[v] = epoch;
      result.push_back(v);
    }
    const std::uint32_t hi = thens[idx].node();
    const std::uint32_t lo = elses[idx].node();
    if (visits[hi] != epoch) {
      visits[hi] = epoch;
      stack.push_back(hi);
    }
    if (visits[lo] != epoch) {
      visits[lo] = epoch;
      stack.push_back(lo);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

namespace {
// Density of a function kept as m * 2^e with m in [0.5, 1) or m == 0: a
// plain double underflows for wide supports (an AND of 1100 inputs has
// density 2^-1100), silently turning sat counts into 0.
struct ScaledDensity {
  double m = 0.0;
  std::int32_t e = 0;
};

ScaledDensity normalize(double m, std::int32_t e) {
  if (m == 0.0) return {0.0, 0};
  int shift = 0;
  m = std::frexp(m, &shift);
  return {m, e + shift};
}

// 0.5 * (a + b), exponent-aligned so the sum itself cannot underflow.
ScaledDensity half_sum(ScaledDensity a, ScaledDensity b) {
  if (a.m == 0.0) return normalize(b.m, b.e - 1);
  if (b.m == 0.0) return normalize(a.m, a.e - 1);
  if (a.e < b.e) std::swap(a, b);
  return normalize(a.m + std::ldexp(b.m, b.e - a.e), a.e - 1);
}

// 1 - d, for complement edges. Densities within 2^-53 of 1 round to 1.
ScaledDensity complement1(ScaledDensity d) {
  if (d.m == 0.0 || d.e < -60) return {0.5, 1};
  return normalize(1.0 - std::ldexp(d.m, d.e), 0);
}

// Post-order DFS marker: node indices occupy at most 31 bits (a Lit packs
// index << 1 | complement in 32), so the stack reuses the top bit to tag
// "children done, compute this node" entries.
constexpr std::uint32_t kComputeBit = 0x80000000u;
}  // namespace

double Manager::sat_count_plain(Edge e, std::uint32_t nvars) const {
  // Same post-order as the scaled path below, with per-node densities as
  // plain doubles: every density is >= 2^-nvars, so for small supports no
  // normalization is needed and the frexp/ldexp per node disappears.
  const std::uint32_t epoch = begin_visit();
  scratch_mant_.resize(vars_.size());
  const Edge* thens = thens_.data();
  const Edge* elses = elses_.data();
  std::uint32_t* visits = visits_.data();
  double* dens = scratch_mant_.data();
  visits[0] = epoch;
  dens[0] = 1.0;
  const std::uint32_t root = e.regular().node();
  const auto read = [&](Edge c) {
    const double d = dens[c.node()];
    return c.complemented() ? 1.0 - d : d;
  };
  std::vector<std::uint32_t>& stack = visit_stack_;
  stack.clear();
  if (visits[root] != epoch) stack.push_back(root);
  while (!stack.empty()) {
    const std::uint32_t entry = stack.back();
    stack.pop_back();
    const std::uint32_t idx = entry & ~kComputeBit;
    if ((entry & kComputeBit) != 0) {
      dens[idx] = 0.5 * (read(thens[idx]) + read(elses[idx]));
      continue;
    }
    if (visits[idx] == epoch) continue;  // discovered via another path
    visits[idx] = epoch;
    stack.push_back(idx | kComputeBit);
    const std::uint32_t hi = thens[idx].node();
    const std::uint32_t lo = elses[idx].node();
    if (visits[hi] != epoch) stack.push_back(hi);
    if (visits[lo] != epoch) stack.push_back(lo);
  }
  const double frac = e.complemented() ? 1.0 - dens[root] : dens[root];
  return std::ldexp(frac, static_cast<std::int32_t>(nvars));
}

double Manager::sat_count(Edge e, std::uint32_t nvars) const {
  // Fraction of the Boolean space mapped to 1, memoized per regular node.
  // Densities live in [2^-nvars, 1]: up to ~1000 variables that range
  // cannot underflow a plain double (min normal 2^-1022) and the fast path
  // applies; wider supports take the scaled mantissa/exponent path, whose
  // final count is one ldexp, not nvars doublings.
  if (nvars <= 1000) return sat_count_plain(e, nvars);
  //
  // Post-order via compute markers: discovering a node stamps it and pushes
  // a marked copy below its (unstamped) children, so each node is popped at
  // most twice -- once to expand, once to compute. A previously-stamped
  // child is always computed before any later parent's marker pops: the
  // levels are strictly decreasing along edges, so a stamped child's own
  // marker can never sit below a parent discovered later.
  const std::uint32_t epoch = begin_visit();
  scratch_mant_.resize(vars_.size());
  scratch_exp_.resize(vars_.size());
  const Edge* thens = thens_.data();
  const Edge* elses = elses_.data();
  std::uint32_t* visits = visits_.data();
  double* mant = scratch_mant_.data();
  std::int32_t* expo = scratch_exp_.data();
  visits[0] = epoch;
  mant[0] = 0.5;  // terminal 1: density 1.0
  expo[0] = 1;
  const std::uint32_t root = e.regular().node();
  const auto read = [&](Edge c) {
    const ScaledDensity d{mant[c.node()], expo[c.node()]};
    return c.complemented() ? complement1(d) : d;
  };
  std::vector<std::uint32_t>& stack = visit_stack_;
  stack.clear();
  if (visits[root] != epoch) stack.push_back(root);
  while (!stack.empty()) {
    const std::uint32_t entry = stack.back();
    stack.pop_back();
    const std::uint32_t idx = entry & ~kComputeBit;
    if ((entry & kComputeBit) != 0) {
      const ScaledDensity d = half_sum(read(thens[idx]), read(elses[idx]));
      mant[idx] = d.m;
      expo[idx] = d.e;
      continue;
    }
    if (visits[idx] == epoch) continue;  // discovered via another path
    visits[idx] = epoch;
    stack.push_back(idx | kComputeBit);
    const std::uint32_t hi = thens[idx].node();
    const std::uint32_t lo = elses[idx].node();
    if (visits[hi] != epoch) stack.push_back(hi);
    if (visits[lo] != epoch) stack.push_back(lo);
  }
  ScaledDensity frac{mant[root], expo[root]};
  if (e.complemented()) frac = complement1(frac);
  return std::ldexp(frac.m, frac.e + static_cast<std::int32_t>(nvars));
}

bool Manager::eval(Edge e, const std::vector<bool>& assignment) const {
  bool phase = e.complemented();
  std::uint32_t idx = e.node();
  while (idx != 0) {
    assert(vars_[idx] < assignment.size());
    const Edge next = assignment[vars_[idx]] ? thens_[idx] : elses_[idx];
    phase ^= next.complemented();
    idx = next.node();
  }
  return !phase;
}

// ----- transfer ("BDD mapping") ------------------------------------------------

Edge Manager::transfer_to(Manager& dst, Edge e,
                          const std::vector<Var>& var_map) const {
  assert(&dst != this && "transfer_to needs a distinct destination manager");
  if (e.is_constant()) return e;
  // Stamped post-order (same compute-marker scheme as sat_count) with the
  // per-node memo in scratch_edge_ (this-node -> dst regular edge); no
  // recursion, so arbitrarily deep chains transfer. No GC can run in dst
  // because only raw operations are used here. All node identity here is
  // index-based: the memo is indexed by this manager's node index, and dst
  // literals are compared as values, never as addresses.
  const std::uint32_t epoch = begin_visit();
  scratch_edge_.resize(vars_.size());
  std::uint32_t* visits = visits_.data();
  visits[0] = epoch;
  scratch_edge_[0] = Edge::one();
  const std::uint32_t root = e.regular().node();
  std::vector<std::uint32_t>& stack = visit_stack_;
  stack.clear();
  if (visits[root] != epoch) stack.push_back(root);
  while (!stack.empty()) {
    const std::uint32_t entry = stack.back();
    stack.pop_back();
    const std::uint32_t idx = entry & ~kComputeBit;
    if ((entry & kComputeBit) != 0) {
      const Edge nhi = thens_[idx];
      const Edge nlo = elses_[idx];
      const Edge hi = scratch_edge_[nhi.node()] ^ nhi.complemented();
      const Edge lo = scratch_edge_[nlo.node()] ^ nlo.complemented();
      assert(vars_[idx] < var_map.size());
      // The map may reorder variables relative to dst's order, so rebuild
      // through ITE (Shannon expansion) rather than raw mk.
      const Edge v = dst.mk(var_map[vars_[idx]], Edge::one(), Edge::zero());
      scratch_edge_[idx] = dst.ite(v, hi, lo);
      continue;
    }
    if (visits[idx] == epoch) continue;
    visits[idx] = epoch;
    stack.push_back(idx | kComputeBit);
    const std::uint32_t hi = thens_[idx].node();
    const std::uint32_t lo = elses_[idx].node();
    if (visits[hi] != epoch) stack.push_back(hi);
    if (visits[lo] != epoch) stack.push_back(lo);
  }
  return scratch_edge_[root] ^ e.complemented();
}

// ----- consistency check --------------------------------------------------------

bool Manager::check_consistency() const {
  // Every chained node is canonical, correctly hashed, and ordered.
  std::size_t chained = 0;
  for (Var v = 0; v < num_vars(); ++v) {
    const Subtable& st = subtables_[v];
    if (st.mask != st.buckets.size() - 1) return false;
    std::size_t in_table = 0;
    for (std::uint32_t b = 0; b < st.buckets.size(); ++b) {
      for (std::uint32_t i = st.buckets[b]; i != kNil; i = nexts_[i]) {
        if (vars_[i] != v) return false;
        if (thens_[i].complemented()) return false;
        if (thens_[i] == elses_[i]) return false;
        if (edge_level(thens_[i]) <= var2level_[v]) return false;
        if (edge_level(elses_[i]) <= var2level_[v]) return false;
        if (hash_triple(v, thens_[i], elses_[i], st.mask) != b) return false;
        ++in_table;
      }
    }
    if (in_table != st.count) return false;
    chained += in_table;
  }
  // Arena bookkeeping: the SoA arrays stay in lockstep, and every non-free
  // node is chained.
  if (thens_.size() != vars_.size() || elses_.size() != vars_.size() ||
      nexts_.size() != vars_.size() || refs_.size() != vars_.size()) {
    return false;
  }
  const std::size_t in_arena = arena_size() - 1 - free_list_.size();
  if (chained != in_arena) return false;
  // Level maps are inverse permutations.
  for (Var v = 0; v < num_vars(); ++v) {
    if (level2var_[var2level_[v]] != v) return false;
  }
  return true;
}

std::size_t Manager::unique_table_buckets() const {
  std::size_t buckets = 0;
  for (const Subtable& st : subtables_) buckets += st.buckets.size();
  return buckets;
}

std::size_t Manager::unique_table_entries() const {
  std::size_t entries = 0;
  for (const Subtable& st : subtables_) entries += st.count;
  return entries;
}

}  // namespace bds::bdd
