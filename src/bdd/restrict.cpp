// Coudert–Madre RESTRICT: heuristic minimization of a BDD with don't cares.
//
// restrict(f, c) returns a function r with r & c == f & c whose BDD is
// (heuristically) smaller than f's. The BDS decomposition engine uses it to
// compute quotients: for a divisor D with D >= F (Lemma 1), the quotient is
// Q = restrict(F, D), which guarantees F = D & Q exactly. The paper points
// at exact don't-care minimization being NP-complete [23], [24] and uses
// this heuristic [25], as we do.
#include <cassert>

#include "bdd/bdd.hpp"

namespace bds::bdd {

Edge Manager::restrict_(Edge f, Edge care) {
  assert(!care.is_zero() && "restrict with empty care set");
  return restrict_rec(f, care);
}

Edge Manager::restrict_rec(Edge f, Edge c) {
  if (c.is_one() || f.is_constant()) return f;
  if (c == f) return Edge::one();
  if (c == !f) return Edge::zero();

  // If the care set's top variable sits above f's, f cannot branch on it:
  // widen the care set by quantifying that variable away.
  std::uint32_t lf = edge_level(f);
  std::uint32_t lc = edge_level(c);
  while (lc < lf) {
    c = ite_rec(hi_of(c), Edge::one(), lo_of(c));
    if (c.is_one()) return f;
    lc = edge_level(c);
  }

  const bool out_complement = f.complemented();
  f = f.regular();

  bool hit = false;
  const Edge cached = cache_lookup(CacheOp::kRestrict, f, c, Edge::one(), hit);
  if (hit) return cached ^ out_complement;

  const Var v = top_var(f);
  const Edge f1 = hi_of(f);
  const Edge f0 = lo_of(f);
  const Edge c1 = lc == lf ? hi_of(c) : c;
  const Edge c0 = lc == lf ? lo_of(c) : c;

  Edge result;
  if (c1.is_zero()) {
    // The v=1 half is entirely don't care: drop the variable.
    result = restrict_rec(f0, c0);
  } else if (c0.is_zero()) {
    result = restrict_rec(f1, c1);
  } else {
    const Edge r1 = restrict_rec(f1, c1);
    const Edge r0 = restrict_rec(f0, c0);
    result = mk(v, r1, r0);
  }
  cache_store(CacheOp::kRestrict, f, c, Edge::one(), result);
  return result ^ out_complement;
}

Edge Manager::constrain(Edge f, Edge care) {
  assert(!care.is_zero() && "constrain with empty care set");
  return constrain_rec(f, care);
}

Edge Manager::constrain_rec(Edge f, Edge c) {
  // Generalized cofactor: f|c maps each x to f at the nearest care point.
  if (c.is_one() || f.is_constant()) return f;
  if (c == f) return Edge::one();
  if (c == !f) return Edge::zero();

  const std::uint32_t lf = edge_level(f);
  const std::uint32_t lc = edge_level(c);
  const std::uint32_t top = std::min(lf, lc);
  const Var v = level2var_[top];

  const Edge f1 = lf == top ? hi_of(f) : f;
  const Edge f0 = lf == top ? lo_of(f) : f;
  const Edge c1 = lc == top ? hi_of(c) : c;
  const Edge c0 = lc == top ? lo_of(c) : c;
  // Unlike restrict, constrain substitutes the sibling cofactor when one
  // half of the care set is empty (the defining "projection" behaviour).
  if (c1.is_zero()) return constrain_rec(f0, c0);
  if (c0.is_zero()) return constrain_rec(f1, c1);

  // constrain commutes with complement (it is composition with a
  // projection), so normalize the operand to its regular phase for caching.
  const bool out_complement = f.complemented();
  const Edge fr = f.regular();
  bool hit = false;
  const Edge cached = cache_lookup(CacheOp::kConstrain, fr, c, Edge::one(), hit);
  if (hit) return cached ^ out_complement;

  // Cofactors of the regular-phase operand.
  const Edge fr1 = lf == top ? hi_of(fr) : fr;
  const Edge fr0 = lf == top ? lo_of(fr) : fr;
  const Edge r1 = constrain_rec(fr1, c1);
  const Edge r0 = constrain_rec(fr0, c0);
  const Edge result = mk(v, r1, r0);
  cache_store(CacheOp::kConstrain, fr, c, Edge::one(), result);
  return result ^ out_complement;
}

}  // namespace bds::bdd
