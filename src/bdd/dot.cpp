// Graphviz export, in the style of the paper's figures: solid 1-edges,
// dashed 0-edges, dotted edges with an odot arrowhead for complement edges.
//
// Under the canonical form only 0-edges and root edges can carry the
// complement bit (every stored 1-edge is regular), so the three styles are
// mutually exclusive: solid = 1-edge, dashed = regular 0-edge, dotted+odot
// = complemented edge. Complemented edges are never materialized as
// negated nodes -- the complement lives on the edge, as in the store.
#include <ostream>

#include "bdd/bdd.hpp"

namespace bds::bdd {

void Manager::write_dot(std::ostream& os, const std::vector<Edge>& roots,
                        const std::vector<std::string>& root_names,
                        const std::vector<std::string>& var_names) const {
  os << "digraph bdd {\n  rankdir=TB;\n"
     << "  node [shape=circle];\n"
     << "  terminal [shape=box,label=\"1\"];\n";

  const auto var_label = [&](Var v) -> std::string {
    if (v < var_names.size() && !var_names[v].empty()) return var_names[v];
    return "x" + std::to_string(v);
  };
  const auto edge_attr = [](Edge e, bool is_hi) -> std::string {
    if (e.complemented()) return "[style=dotted,arrowhead=odot]";
    return is_hi ? "[style=solid]" : "[style=dashed]";
  };

  // Stamped DFS (begin_visit): no per-call hash set, no recursion. All
  // node identity is the index decoded from the edge's Lit; nothing here
  // depends on where the arrays live in memory.
  const std::uint32_t epoch = begin_visit();
  visits_[0] = epoch;
  std::vector<std::uint32_t> stack;
  const auto target = [](Edge e) -> std::string {
    return e.is_constant() ? "terminal" : "n" + std::to_string(e.node());
  };

  for (std::size_t r = 0; r < roots.size(); ++r) {
    const std::string name =
        r < root_names.size() ? root_names[r] : "F" + std::to_string(r);
    os << "  root" << r << " [shape=plaintext,label=\"" << name << "\"];\n";
    os << "  root" << r << " -> " << target(roots[r]) << ' '
       << edge_attr(roots[r], true) << ";\n";
    if (!roots[r].is_constant()) stack.push_back(roots[r].node());
  }
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    if (visits_[idx] == epoch) continue;
    visits_[idx] = epoch;
    const Edge hi = thens_[idx];
    const Edge lo = elses_[idx];
    os << "  n" << idx << " [label=\"" << var_label(vars_[idx]) << "\"];\n";
    os << "  n" << idx << " -> " << target(hi) << ' ' << edge_attr(hi, true)
       << ";\n";
    os << "  n" << idx << " -> " << target(lo) << ' ' << edge_attr(lo, false)
       << ";\n";
    stack.push_back(hi.node());
    stack.push_back(lo.node());
  }
  os << "}\n";
}

}  // namespace bds::bdd
