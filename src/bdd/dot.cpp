// Graphviz export, in the style of the paper's figures: solid 1-edges,
// dashed 0-edges, dotted edges with a dot marker for complement edges.
#include <ostream>

#include "bdd/bdd.hpp"

namespace bds::bdd {

void Manager::write_dot(std::ostream& os, const std::vector<Edge>& roots,
                        const std::vector<std::string>& root_names,
                        const std::vector<std::string>& var_names) const {
  os << "digraph bdd {\n  rankdir=TB;\n"
     << "  node [shape=circle];\n"
     << "  terminal [shape=box,label=\"1\"];\n";

  const auto var_label = [&](Var v) -> std::string {
    if (v < var_names.size() && !var_names[v].empty()) return var_names[v];
    return "x" + std::to_string(v);
  };
  const auto edge_attr = [](Edge e, bool is_hi) -> std::string {
    std::string attr = is_hi ? "[style=solid" : "[style=dashed";
    if (e.complemented()) attr += ",arrowhead=odot";
    return attr + "]";
  };

  // Stamped DFS (begin_visit): no per-call hash set, no recursion.
  const std::uint32_t epoch = begin_visit();
  nodes_[0].visit = epoch;
  std::vector<std::uint32_t> stack;
  const auto target = [](Edge e) -> std::string {
    return e.is_constant() ? "terminal" : "n" + std::to_string(e.node());
  };

  for (std::size_t r = 0; r < roots.size(); ++r) {
    const std::string name =
        r < root_names.size() ? root_names[r] : "F" + std::to_string(r);
    os << "  root" << r << " [shape=plaintext,label=\"" << name << "\"];\n";
    os << "  root" << r << " -> " << target(roots[r]) << ' '
       << edge_attr(roots[r], true) << ";\n";
    if (!roots[r].is_constant()) stack.push_back(roots[r].node());
  }
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    if (nodes_[idx].visit == epoch) continue;
    nodes_[idx].visit = epoch;
    const Node& n = nodes_[idx];
    os << "  n" << idx << " [label=\"" << var_label(n.var) << "\"];\n";
    os << "  n" << idx << " -> " << target(n.hi) << ' ' << edge_attr(n.hi, true)
       << ";\n";
    os << "  n" << idx << " -> " << target(n.lo) << ' '
       << edge_attr(n.lo, false) << ";\n";
    stack.push_back(n.hi.node());
    stack.push_back(n.lo.node());
  }
  os << "}\n";
}

}  // namespace bds::bdd
