// ITE (if-then-else) apply, composition and quantification.
//
// ITE subsumes all two-operand Boolean connectives; the standard
// Brace–Rudell normalizations keep the computed table effective with
// complement edges.
#include <algorithm>
#include <cassert>

#include "bdd/bdd.hpp"

namespace bds::bdd {

Edge Manager::ite(Edge f, Edge g, Edge h) {
  return ite_rec(f, g, h);
}

Edge Manager::ite_rec(Edge f, Edge g, Edge h) {
  // Terminal cases.
  if (f.is_one()) return g;
  if (f.is_zero()) return h;
  if (g == h) return g;
  // Collapse operands that repeat the selector.
  if (f == g) g = Edge::one();
  if (f == !g) g = Edge::zero();
  if (f == h) h = Edge::zero();
  if (f == !h) h = Edge::one();
  if (g.is_one() && h.is_zero()) return f;
  if (g.is_zero() && h.is_one()) return !f;

  // Normalize: selector regular, then-branch regular (complement the output).
  if (f.complemented()) {
    f = !f;
    std::swap(g, h);
  }
  bool out_complement = false;
  if (g.complemented()) {
    out_complement = true;
    g = !g;
    h = !h;
  }

  bool hit = false;
  const Edge cached = cache_lookup(CacheOp::kIte, f, g, h, hit);
  if (hit) return cached ^ out_complement;

  const std::uint32_t lf = edge_level(f);
  const std::uint32_t lg = edge_level(g);
  const std::uint32_t lh = edge_level(h);
  const std::uint32_t top = std::min({lf, lg, lh});
  const Var v = level2var_[top];

  const Edge f1 = lf == top ? hi_of(f) : f;
  const Edge f0 = lf == top ? lo_of(f) : f;
  const Edge g1 = lg == top ? hi_of(g) : g;
  const Edge g0 = lg == top ? lo_of(g) : g;
  const Edge h1 = lh == top ? hi_of(h) : h;
  const Edge h0 = lh == top ? lo_of(h) : h;

  const Edge r1 = ite_rec(f1, g1, h1);
  const Edge r0 = ite_rec(f0, g0, h0);
  const Edge result = mk(v, r1, r0);

  cache_store(CacheOp::kIte, f, g, h, result);
  return result ^ out_complement;
}

Edge Manager::compose(Edge f, Var v, Edge g) {
  return compose_rec(f, v, g, var2level_[v]);
}

Edge Manager::compose_rec(Edge f, Var v, Edge g, std::uint32_t vlevel) {
  const std::uint32_t lf = edge_level(f);
  if (lf > vlevel) return f;  // f cannot depend on v below this point
  // Normalize the operand to a regular edge for better cache reuse.
  const bool out_complement = f.complemented();
  f = f.regular();
  if (top_var(f) == v) {
    return ite_rec(g, hi_of(f), lo_of(f)) ^ out_complement;
  }
  bool hit = false;
  const Edge cached =
      cache_lookup(CacheOp::kCompose, f, g, Edge(v, false), hit);
  if (hit) return cached ^ out_complement;

  const Edge r1 = compose_rec(hi_of(f), v, g, vlevel);
  const Edge r0 = compose_rec(lo_of(f), v, g, vlevel);
  // The substituted variable may appear in g anywhere in the order, so the
  // children can no longer be stitched with mk(top_var(f), ...) blindly:
  // use ITE on the top variable to rebuild canonically.
  const Edge fv = mk(top_var(f), Edge::one(), Edge::zero());
  const Edge result = ite_rec(fv, r1, r0);
  cache_store(CacheOp::kCompose, f, g, Edge(v, false), result);
  return result ^ out_complement;
}

Edge Manager::exists(Edge f, Var v) {
  return exists_rec(f, v, var2level_[v]);
}

Edge Manager::exists_rec(Edge f, Var v, std::uint32_t vlevel) {
  const std::uint32_t lf = edge_level(f);
  if (lf > vlevel) return f;
  if (top_var(f) == v) return ite_rec(hi_of(f), Edge::one(), lo_of(f));
  // NOTE: exists does not commute with complement, so the cache key must
  // include the edge's phase -- cache on f as-is.
  bool hit = false;
  const Edge cached = cache_lookup(CacheOp::kExists, f, Edge(v, false),
                                   Edge(v, false), hit);
  if (hit) return cached;
  const Edge r1 = exists_rec(hi_of(f), v, vlevel);
  const Edge r0 = exists_rec(lo_of(f), v, vlevel);
  const Edge result = mk(top_var(f), r1, r0);
  cache_store(CacheOp::kExists, f, Edge(v, false), Edge(v, false), result);
  return result;
}

}  // namespace bds::bdd
