// Reduced ordered binary decision diagrams (ROBDDs) with complement edges.
//
// This is the substrate the BDS decomposition engine is built on; it plays
// the role CUDD played for the original system. Design follows the classic
// Brace–Rudell–Bryant package over an index-based struct-of-arrays store
// (the ABC "NewBdd" layout):
//
//  * Nodes are 32-bit indices into parallel arrays (`vars_` / `thens_` /
//    `elses_` / `nexts_`, plus a 16-bit `refs_` side array); a `Lit` is the
//    raw 32-bit literal `(node_index << 1) | complement`, and `Edge` is its
//    typed wrapper. There are no per-node heap objects and no pointers:
//    node identity is the index, which is stable across GC and reordering.
//  * Canonical form: the 1-edge (`then`) of every node is a regular
//    (non-complemented) edge; complement is pushed onto incoming edges.
//    There is a single terminal node representing constant 1; constant 0 is
//    its complement edge.
//  * A mask-based per-variable unique subtable (power-of-two buckets,
//    `hash & mask`) guarantees structural canonicity and makes
//    Rudell-style in-place adjacent-variable swap (and hence sifting
//    reordering) possible.
//  * A lossy computed table caches ITE/restrict/compose results, keyed on
//    `Lit` pairs. It is 2-way set-associative with LRU-of-2 replacement
//    (two hot operations that collide on one set no longer evict each
//    other every apply), sized adaptively (doubling while the lookup
//    stream runs hot, as CUDD does), and survives garbage collection:
//    gc() drops only the entries that reference reclaimed nodes.
//  * Reference counting with deferred reclamation: external references are
//    held through the RAII `Bdd` handle; dead nodes are reclaimed by
//    explicit or threshold-triggered garbage collection, which only runs at
//    handle-level API entry points (never mid-recursion). Counts are
//    16-bit and saturate (CUDD-style): a node with 65535+ parents is
//    pinned for the manager's lifetime.
//  * The whole store is trivially serializable: `serialize()` /
//    `deserialize()` write and restore a manager byte-exactly (order,
//    arena, free list, reference counts), and `reset()` returns a manager
//    to its freshly-constructed state while keeping allocated capacity.
//
// The decomposition engine needs read access to raw structure (levels,
// children, complement bits), which `Manager` exposes through the
// `Edge`/`node_hi`/`node_lo` accessors.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "util/budget.hpp"
#include "util/telemetry.hpp"

namespace bds::bdd {

class Manager;
class Bdd;

/// Raw 32-bit literal: `(node_index << 1) | complement`. This is the wire
/// format of an edge -- the element type the SoA store, the unique/computed
/// tables and the serializer traffic in. `Edge` wraps one `Lit`.
using Lit = std::uint32_t;

/// A directed edge in the BDD: target node index plus a complement bit,
/// packed into one `Lit`.
class Edge {
 public:
  constexpr Edge() : bits_(0) {}
  constexpr Edge(std::uint32_t node, bool complement)
      : bits_((node << 1) | static_cast<std::uint32_t>(complement)) {}

  constexpr std::uint32_t node() const { return bits_ >> 1; }
  constexpr bool complemented() const { return (bits_ & 1u) != 0; }
  /// Same target with the complement bit cleared.
  constexpr Edge regular() const { return from_bits(bits_ & ~1u); }

  constexpr Edge operator!() const { return from_bits(bits_ ^ 1u); }
  /// XOR the complement bit with `c` (phase adjustment while traversing).
  constexpr Edge operator^(bool c) const {
    return from_bits(bits_ ^ static_cast<std::uint32_t>(c));
  }

  constexpr bool operator==(const Edge&) const = default;

  /// Terminal constants. The terminal node always has index 0.
  static constexpr Edge one() { return Edge(0, false); }
  static constexpr Edge zero() { return Edge(0, true); }

  constexpr bool is_one() const { return *this == one(); }
  constexpr bool is_zero() const { return *this == zero(); }
  constexpr bool is_constant() const { return node() == 0; }

  constexpr Lit bits() const { return bits_; }
  /// Rehydrates an Edge from its raw literal (serialization, tests).
  static constexpr Edge from_bits(Lit b) {
    Edge e;
    e.bits_ = b;
    return e;
  }

 private:
  Lit bits_;
};

static_assert(sizeof(Edge) == sizeof(Lit) && alignof(Edge) == alignof(Lit),
              "Edge must be a transparent Lit wrapper (SoA store layout)");

/// Variable identifier. Variables keep their identity across reordering;
/// the manager maps them to levels (positions in the current order).
using Var = std::uint32_t;
inline constexpr Var kVarTerminal = 0xffffffffu;
/// Level of the terminal node: below every variable.
inline constexpr std::uint32_t kLevelTerminal = 0xffffffffu;

/// Saturated 16-bit reference count: once a node accumulates this many
/// parents it is pinned for the manager's lifetime (CUDD's half-word refs).
inline constexpr std::uint16_t kRefSaturated = 0xffffu;

// Per-node byte footprint, derived from the element types of the parallel
// arrays so accounting cannot drift from the real layout (the predecessor
// of these constants was hand-maintained and went stale).
/// Bytes per slot of the four permanent node-store arrays
/// (var, then-literal, else-literal, unique-chain next).
inline constexpr std::size_t kNodeStoreBytesPerNode =
    sizeof(Var) + 2 * sizeof(Lit) + sizeof(std::uint32_t);
/// Bytes per slot of the reference-count side array.
inline constexpr std::size_t kNodeRefBytesPerNode = sizeof(std::uint16_t);
/// Bytes per slot of the traversal-stamp scratch array. Demand-grown on the
/// first structural query and shared by all of them; not part of the
/// permanent store.
inline constexpr std::size_t kNodeScratchBytesPerNode = sizeof(std::uint32_t);
/// Total permanent bytes per node (store + refs), the constant the
/// benchmark memory columns are computed from.
inline constexpr std::size_t kBytesPerNode =
    kNodeStoreBytesPerNode + kNodeRefBytesPerNode;
static_assert(kNodeStoreBytesPerNode <= 16,
              "node store regressed past 16 bytes/node (was 24 pre-SoA)");

/// Cached operation kinds of the computed table, in the order used by the
/// per-op counters of `ManagerStats` (and by `kCacheOpNames`).
inline constexpr std::size_t kNumCacheOps = 5;
inline constexpr std::array<const char*, kNumCacheOps> kCacheOpNames{
    "ite", "restrict", "constrain", "compose", "exists"};

/// Statistics snapshot used by benchmarks to report memory/size columns.
struct ManagerStats {
  std::size_t live_nodes = 0;       ///< Nodes with a nonzero reference count.
  std::size_t allocated_nodes = 0;  ///< Arena slots ever allocated.
  std::size_t peak_live_nodes = 0;  ///< High-watermark of live_nodes.
  std::size_t gc_runs = 0;
  std::size_t unique_lookups = 0;
  std::size_t cache_lookups = 0;
  std::size_t cache_hits = 0;
  /// Per-operation computed-table traffic, indexed as in kCacheOpNames.
  std::array<std::size_t, kNumCacheOps> cache_op_lookups{};
  std::array<std::size_t, kNumCacheOps> cache_op_hits{};
  std::size_t cache_entries = 0;   ///< Current computed-table capacity.
  std::size_t cache_resizes = 0;   ///< Adaptive growth events.
  /// Entries dropped by gc() because they referenced reclaimed nodes
  /// (the rest of the table survives collection).
  std::size_t cache_dead_evictions = 0;
  std::size_t reorderings = 0;
  /// Nodes whose 16-bit reference count has saturated (kRefSaturated):
  /// they are pinned for the manager's lifetime -- gc() can never reclaim
  /// them -- so a nonzero value explains live-node floors that budgets and
  /// collection cannot push down. Sticky: saturation is irreversible.
  std::size_t saturated_refs = 0;
  /// Approximate resident bytes of the node arena plus tables.
  std::size_t memory_bytes = 0;
  std::size_t peak_memory_bytes = 0;
};

/// Flattens a ManagerStats snapshot into telemetry counters under the
/// canonical names MANUAL.md's glossary documents (live_nodes,
/// peak_live_nodes, gc_runs, unique_lookups, cache_lookups, cache_hits,
/// cache_<op>_lookups/hits per kCacheOpNames, cache_entries/resizes/
/// dead_evictions, reorderings, saturated_refs, memory_bytes,
/// peak_memory_bytes). To
/// attribute one phase of work, diff two snapshots with
/// `telemetry_counters(after, &before)`: monotonic counters subtract,
/// level/high-watermark gauges report the `after` value.
[[nodiscard]] util::CounterList telemetry_counters(
    const ManagerStats& stats, const ManagerStats* baseline = nullptr);

namespace detail {
/// Always-on failure hook of the `Bdd` handle guard: prints a diagnostic
/// naming the offending operation and aborts (release builds included).
[[noreturn]] void invalid_handle(const char* op);
/// Always-on rejection of malformed caller-supplied arguments (e.g. a
/// non-permutation handed to Manager::set_order): prints the operation and
/// the violated precondition, then aborts, in release builds too.
[[noreturn]] void invalid_argument(const char* op, const char* what);
}  // namespace detail

/// The BDD manager: owns all nodes, tables and the variable order.
class Manager {
 public:
  /// Creates a manager with `num_vars` variables in identity order.
  explicit Manager(std::uint32_t num_vars = 0);
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  // ----- lifecycle: reset and serialization (bdd/serialize.cpp) -------------

  /// Returns the manager to its freshly-constructed (0-variable) state --
  /// the manager-pool primitive: a reset manager replays an operation
  /// sequence byte-identically to a fresh one, *including* the
  /// capacity-derived memory_bytes gauge, because every buffer is restored
  /// to the constructor's exact footprint (buffers already at that
  /// footprint are reused in place, so the common recycling path still
  /// skips the big computed-table allocation). All outstanding `Bdd`
  /// handles and raw edges are invalidated; the installed budget and
  /// gauge sampler survive.
  void reset();

  /// Writes the whole manager -- variable order, node arena (free slots
  /// included, so every outstanding `Lit` keeps its meaning), reference
  /// counts and the free list -- as a versioned, checksummed binary image.
  /// `roots` is an optional set of edges stored alongside for the loader
  /// to re-wrap. The computed table and statistics are not serialized.
  void serialize(std::ostream& os, const std::vector<Edge>& roots = {}) const;

  /// Restores a manager image written by serialize() into this manager,
  /// which must be freshly constructed or reset() (aborts otherwise: a
  /// populated manager has live handles the image would invalidate).
  /// Returns the roots stored by the writer, un-wrapped: their reference
  /// counts are already part of the image, so wrap each in a `Bdd` handle
  /// (adding one count) or use them raw. Throws bds::SerializeError on a
  /// malformed, truncated, version-mismatched or corrupted image.
  std::vector<Edge> deserialize(std::istream& is);

  // ----- variables and order ------------------------------------------------

  [[nodiscard]] std::uint32_t num_vars() const {
    return static_cast<std::uint32_t>(var2level_.size());
  }
  /// Adds a fresh variable at the bottom of the order; returns its id.
  Var new_var();
  /// Ensures at least `n` variables exist.
  void ensure_vars(std::uint32_t n);

  [[nodiscard]] std::uint32_t level_of(Var v) const { return var2level_[v]; }
  [[nodiscard]] Var var_at_level(std::uint32_t level) const {
    return level2var_[level];
  }
  /// Level of the node an edge points to (kLevelTerminal for constants).
  [[nodiscard]] std::uint32_t edge_level(Edge e) const;

  // ----- handle-level API (RAII, GC-safe) -----------------------------------

  Bdd constant(bool value);
  Bdd one();
  Bdd zero();
  Bdd var(Var v);
  Bdd nvar(Var v);
  /// Wraps a raw edge in a counted handle.
  Bdd wrap(Edge e);

  // ----- raw-edge operations ------------------------------------------------
  // These do not trigger garbage collection; callers holding raw edges across
  // calls are safe as long as they do not call gc()/reorder themselves.

  /// Finds or creates the canonical node (v, hi, lo).
  Edge mk(Var v, Edge hi, Edge lo);
  Edge ite(Edge f, Edge g, Edge h);
  Edge and_(Edge f, Edge g) { return ite(f, g, Edge::zero()); }
  Edge or_(Edge f, Edge g) { return ite(f, Edge::one(), g); }
  Edge xor_(Edge f, Edge g) { return ite(f, !g, g); }
  Edge xnor_(Edge f, Edge g) { return ite(f, g, !g); }

  /// Positive/negative cofactor with respect to variable v.
  Edge cofactor(Edge f, Var v, bool value);
  /// Shallow cofactors w.r.t. the variable at the edge's own top level.
  [[nodiscard]] Edge hi_of(Edge e) const;
  [[nodiscard]] Edge lo_of(Edge e) const;
  [[nodiscard]] Var top_var(Edge e) const;

  /// Coudert–Madre restrict: minimizes f using !care as don't care.
  /// Guarantees restrict(f, c) & c == f & c. Requires c != 0.
  Edge restrict_(Edge f, Edge care);
  /// Coudert–Madre constrain (generalized cofactor): also satisfies
  /// constrain(f, c) & c == f & c, with the stronger image property
  /// constrain(f, c)(x) == f(proj_c(x)); may grow the BDD where restrict
  /// cannot. Requires c != 0.
  Edge constrain(Edge f, Edge care);
  /// Existential quantification of a single variable.
  Edge exists(Edge f, Var v);
  /// Substitutes function g for variable v inside f.
  Edge compose(Edge f, Var v, Edge g);

  /// Number of distinct nodes reachable from e (terminal included).
  [[nodiscard]] std::size_t size(Edge e) const;
  /// Combined size of a set of roots (shared nodes counted once).
  [[nodiscard]] std::size_t size(const std::vector<Edge>& roots) const;
  /// Set of variables the function depends on.
  [[nodiscard]] std::vector<Var> support(Edge e) const;
  /// Number of satisfying assignments over `nvars` variables.
  [[nodiscard]] double sat_count(Edge e, std::uint32_t nvars) const;
  /// Evaluates the function under a full assignment (indexed by Var).
  [[nodiscard]] bool eval(Edge e, const std::vector<bool>& assignment) const;

  // ----- node structure access (read only) ----------------------------------

  [[nodiscard]] Var node_var(std::uint32_t node) const { return vars_[node]; }
  [[nodiscard]] Edge node_hi(std::uint32_t node) const { return thens_[node]; }
  [[nodiscard]] Edge node_lo(std::uint32_t node) const { return elses_[node]; }
  [[nodiscard]] bool is_terminal(std::uint32_t node) const {
    return node == 0;
  }

  // ----- reference counting / garbage collection ----------------------------

  void ref(Edge e);
  void deref(Edge e);
  [[nodiscard]] std::uint32_t ref_count(Edge e) const {
    return refs_[e.node()];
  }
  /// Reclaims all dead nodes. Invalidates the computed table.
  void gc();
  /// Runs gc() if the arena grew past the auto-GC threshold.
  void maybe_gc();

  // ----- resource governance (util/budget.hpp) ------------------------------

  /// Installs (or, with nullptr, removes) a cooperative resource budget.
  /// The manager polls it at its safe points -- computed-table lookups,
  /// maybe_gc(), and between reordering sift steps -- and throws
  /// bds::BudgetExceeded when a ceiling is hit. Node/byte ceilings compare
  /// against *this* manager's counters; the deadline and cancel flag are
  /// global to the budget. Checks never fire inside a structural rewrite,
  /// so the manager and all handles stay valid after the throw.
  void set_budget(std::shared_ptr<const util::ResourceBudget> budget) {
    budget_ = std::move(budget);
    budget_ticks_ = 0;
  }
  [[nodiscard]] const std::shared_ptr<const util::ResourceBudget>& budget()
      const {
    return budget_;
  }

  /// Installs a low-frequency gauge sampler (null to detach; not owned).
  /// It observes live-node/byte high-watermarks from inside long operation
  /// streams, fed from budget_check_slow() exactly when the budget's
  /// amortized tick wraps (one sample per kDeadlineCheckInterval checks).
  /// Sampling therefore costs nothing unless a budget is installed, and
  /// adds no branch to the apply hot path even then -- the poll lives in
  /// the out-of-line slow path the budget already pays for.
  void set_gauge_sampler(util::GaugeSampler* sampler) { gauge_ = sampler; }
  [[nodiscard]] util::GaugeSampler* gauge_sampler() const { return gauge_; }

  // ----- dynamic variable reordering (bdd/reorder.cpp) ----------------------

  /// Rudell sifting over all variables. External `Bdd` handles stay valid
  /// (node identities are preserved or transferred in place).
  void reorder_sift(double max_growth = 1.2);
  /// Swaps the variables at levels `level` and `level + 1`.
  void swap_levels(std::uint32_t level);
  /// Installs an explicit order (permutation of all vars) by bubble swaps.
  void set_order(const std::vector<Var>& order);

  // ----- transfer between managers ("BDD mapping", Section IV-B) ------------

  /// Rebuilds `e` (a function of this manager) inside `dst`, renaming
  /// variables through `var_map` (indexed by this manager's Var).
  Edge transfer_to(Manager& dst, Edge e, const std::vector<Var>& var_map) const;

  // ----- diagnostics ---------------------------------------------------------

  [[nodiscard]] const ManagerStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t live_nodes() const { return stats_.live_nodes; }
  /// Total bucket count across all unique subtables (O(num_vars)).
  [[nodiscard]] std::size_t unique_table_buckets() const;
  /// Total nodes chained in the unique subtables, live and dead
  /// (O(num_vars)); entries / buckets is the unique-table load factor.
  [[nodiscard]] std::size_t unique_table_entries() const;
  /// Writes a Graphviz rendering of the functions in `roots` (bdd/dot.cpp).
  void write_dot(std::ostream& os, const std::vector<Edge>& roots,
                 const std::vector<std::string>& root_names = {},
                 const std::vector<std::string>& var_names = {}) const;
  /// Checks internal invariants (canonicity, table consistency). Test-only.
  [[nodiscard]] bool check_consistency() const;

 private:
  friend class Bdd;

  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// Starting bucket count of a fresh unique subtable (power of two).
  static constexpr std::uint32_t kInitialBuckets = 16;
  /// Computed-table capacity of a fresh (or reset) manager; grows
  /// adaptively from here (cache_maybe_grow), never past its ceiling.
  static constexpr std::size_t kCacheInitialEntries = 1u << 14;
  /// SoA-column slots reserved by the constructor -- and restored exactly
  /// by reset(), so the capacity-derived memory_bytes gauge of a recycled
  /// manager matches a fresh one byte for byte.
  static constexpr std::size_t kArenaReserve = 1024;

  /// Mask-based unique subtable: power-of-two bucket array of chain heads
  /// (kNil-terminated, chained through `nexts_`), indexed by `hash & mask`.
  struct Subtable {
    std::vector<std::uint32_t> buckets;
    std::uint32_t mask = 0;   ///< buckets.size() - 1.
    std::uint32_t count = 0;  ///< Nodes currently chained (live + dead).
  };

  // Computed-table entry, keyed on Lit pairs packed two to a word; op tags
  // distinguish cached operations.
  struct CacheEntry {
    std::uint64_t key_lo = ~0ULL;  // (op, f)
    std::uint64_t key_hi = ~0ULL;  // (g, h)
    Edge result{};
  };
  enum class CacheOp : std::uint32_t {
    kIte = 1,
    kRestrict,
    kConstrain,
    kCompose,
    kExists,
  };

  std::uint32_t alloc_node(Var v, Edge hi, Edge lo);
  void free_node(std::uint32_t idx);
  void unique_insert(std::uint32_t idx);
  void unique_remove(std::uint32_t idx);
  void grow_subtable(Subtable& st);
  static std::uint32_t hash_triple(Var v, Edge hi, Edge lo,
                                   std::uint32_t mask);
  /// Number of node slots ever allocated (live + free), terminal included.
  [[nodiscard]] std::uint32_t arena_size() const {
    return static_cast<std::uint32_t>(vars_.size());
  }

  Edge cache_lookup(CacheOp op, Edge f, Edge g, Edge h, bool& hit);
  void cache_store(CacheOp op, Edge f, Edge g, Edge h, Edge result);
  /// Index of slot 0 (the MRU way) of the 2-way set a key maps to; the set
  /// count is cache_.size() / 2 and slot 1 sits at the next index.
  [[nodiscard]] std::size_t cache_set_base(std::uint64_t key_lo,
                                           std::uint64_t key_hi) const;
  void cache_clear();
  /// Doubles the computed table when the recent lookup window ran hot
  /// (CUDD-style adaptive sizing); existing entries are rehashed, not lost.
  void cache_maybe_grow();
  /// Drops only the entries whose operands or result reference a reclaimed
  /// node; called by gc() instead of cache_clear().
  void cache_invalidate_dead();
  bool node_is_free(std::uint32_t idx) const;

  /// Budget safe-point poll: one pointer test when no budget is installed.
  /// Called from cache_lookup() (once per nonterminal apply step) and
  /// maybe_gc() (handle-level entries) -- never from mk(), so the budget
  /// cannot fire inside swap_levels()'s in-place node rewrite.
  void budget_checkpoint() {
    if (budget_) budget_check_slow();
  }
  void budget_check_slow();

  Edge ite_rec(Edge f, Edge g, Edge h);
  Edge restrict_rec(Edge f, Edge c);
  Edge constrain_rec(Edge f, Edge c);
  Edge compose_rec(Edge f, Var v, Edge g, std::uint32_t vlevel);
  Edge exists_rec(Edge f, Var v, std::uint32_t vlevel);

  // Generation-stamped traversal machinery (see Node::visit). begin_visit()
  // opens a fresh epoch: a node is "seen" in the current query iff its stamp
  // equals the epoch. Queries share the scratch stack/arrays below so the
  // hot structural paths allocate nothing after warm-up.
  std::uint32_t begin_visit() const;
  /// Marks and counts the nodes reachable from `e` not yet stamped `epoch`.
  std::size_t count_nodes(Edge e, std::uint32_t epoch) const;
  /// sat_count over plain doubles -- the fast path when `nvars` is small
  /// enough that per-node densities (>= 2^-nvars) cannot underflow.
  double sat_count_plain(Edge e, std::uint32_t nvars) const;
  void update_memory_stats();

  // Reordering internals (bdd/reorder.cpp).
  std::uint32_t subtable_live(Var v) const;
  void sift_var(Var v, double max_growth);

  // Struct-of-arrays node store, indexed by node index. The four permanent
  // arrays total kNodeStoreBytesPerNode (16) bytes per slot; `refs_` adds
  // kNodeRefBytesPerNode. Free slots are stamped kVarTerminal in `vars_`
  // and linked through `free_list_`.
  std::vector<Var> vars_;             ///< Branch variable (kVarTerminal = free/terminal).
  std::vector<Edge> thens_;           ///< 1-edges; regular by canonical form.
  std::vector<Edge> elses_;           ///< 0-edges.
  std::vector<std::uint32_t> nexts_;  ///< Unique-table chains (kNil-terminated).
  std::vector<std::uint16_t> refs_;   ///< Saturating reference counts.
  std::vector<std::uint32_t> free_list_;
  std::vector<Subtable> subtables_;  ///< Indexed by Var.
  std::vector<std::uint32_t> var2level_;
  std::vector<Var> level2var_;
  /// Computed table: power-of-two size, adaptively grown, viewed as
  /// size()/2 sets of two adjacent ways (slot 0 = MRU; cache_set_base()).
  std::vector<CacheEntry> cache_;
  std::size_t cache_lookups_at_resize_ = 0;  ///< Window start (growth policy).
  std::size_t cache_hits_at_resize_ = 0;
  std::size_t gc_threshold_ = 1u << 14;
  /// Total bytes of all subtable bucket arrays, maintained incrementally so
  /// update_memory_stats() stays O(1) on the per-operation hot path.
  std::size_t subtable_bucket_bytes_ = 0;
  ManagerStats stats_;

  /// Optional resource governor (set_budget); shared across managers.
  std::shared_ptr<const util::ResourceBudget> budget_;
  /// Amortization counter for the budget's deadline clock reads.
  std::uint32_t budget_ticks_ = 0;
  /// Optional telemetry gauge sampler (set_gauge_sampler; not owned).
  util::GaugeSampler* gauge_ = nullptr;

  // Traversal scratch (all logically const; see begin_visit()). `visits_`
  // holds the per-node generation stamps: a node is "seen" in the current
  // query iff its stamp equals the epoch. It is demand-grown to the arena
  // size by begin_visit(), so managers that never run a structural query
  // never pay its kNodeScratchBytesPerNode.
  mutable std::uint32_t visit_epoch_ = 0;
  mutable std::vector<std::uint32_t> visits_;      ///< per-node epoch stamps
  mutable std::vector<std::uint32_t> visit_stack_;
  mutable std::vector<std::uint32_t> var_visit_;   ///< per-var epoch stamps
  mutable std::vector<double> scratch_mant_;       ///< sat_count densities
  mutable std::vector<std::int32_t> scratch_exp_;  ///< (mantissa, exponent)
  mutable std::vector<Edge> scratch_edge_;         ///< transfer_to memo
};

/// RAII handle to a BDD function: owns one external reference.
///
/// All engine-level code holds functions through `Bdd`; raw `Edge` values
/// are only used inside single recursive operations.
///
/// INVARIANT: a default-constructed `Bdd` is an empty placeholder -- it
/// holds no manager and denotes no function (`valid()` is false). The only
/// legal operations on it are destruction, assignment, swap, `valid()` and
/// `operator==`. Every functional query or operator checks this invariant
/// (and that binary operands share one manager) and aborts with a
/// diagnostic on violation, in release builds too: a silent null-manager
/// dereference used to segfault far from the misuse site.
class Bdd {
 public:
  Bdd() = default;
  Bdd(Manager& mgr, Edge e) : mgr_(&mgr), e_(e) { mgr_->ref(e_); }
  Bdd(const Bdd& o) : mgr_(o.mgr_), e_(o.e_) {
    if (mgr_ != nullptr) mgr_->ref(e_);
  }
  Bdd(Bdd&& o) noexcept : mgr_(o.mgr_), e_(o.e_) { o.mgr_ = nullptr; }
  Bdd& operator=(const Bdd& o) {
    if (this != &o) {
      Bdd tmp(o);
      swap(tmp);
    }
    return *this;
  }
  Bdd& operator=(Bdd&& o) noexcept {
    swap(o);
    return *this;
  }
  ~Bdd() {
    if (mgr_ != nullptr) mgr_->deref(e_);
  }

  void swap(Bdd& o) noexcept {
    std::swap(mgr_, o.mgr_);
    std::swap(e_, o.e_);
  }

  [[nodiscard]] bool valid() const { return mgr_ != nullptr; }
  [[nodiscard]] Manager& manager() const { return req("Bdd::manager"); }
  [[nodiscard]] Edge edge() const { return e_; }

  [[nodiscard]] bool is_one() const { return e_.is_one(); }
  [[nodiscard]] bool is_zero() const { return e_.is_zero(); }
  [[nodiscard]] bool is_constant() const { return e_.is_constant(); }

  // Handle-level operators run maybe_gc() first: every live function is
  // pinned by a handle here, so collection is safe, and it bounds the
  // arena during long operation sequences (CEC, eliminate, full_simplify).
  Bdd operator!() const { return Bdd(req("Bdd::operator!"), !e_); }
  Bdd operator&(const Bdd& o) const {
    Manager& m = req(o, "Bdd::operator&");
    m.maybe_gc();
    return Bdd(m, m.and_(e_, o.e_));
  }
  Bdd operator|(const Bdd& o) const {
    Manager& m = req(o, "Bdd::operator|");
    m.maybe_gc();
    return Bdd(m, m.or_(e_, o.e_));
  }
  Bdd operator^(const Bdd& o) const {
    Manager& m = req(o, "Bdd::operator^");
    m.maybe_gc();
    return Bdd(m, m.xor_(e_, o.e_));
  }
  Bdd xnor(const Bdd& o) const {
    Manager& m = req(o, "Bdd::xnor");
    m.maybe_gc();
    return Bdd(m, m.xnor_(e_, o.e_));
  }
  Bdd ite(const Bdd& g, const Bdd& h) const {
    Manager& m = req(g, "Bdd::ite");
    if (h.mgr_ != mgr_) detail::invalid_handle("Bdd::ite");
    m.maybe_gc();
    return Bdd(m, m.ite(e_, g.e_, h.e_));
  }

  bool operator==(const Bdd& o) const { return mgr_ == o.mgr_ && e_ == o.e_; }

  Bdd cofactor(Var v, bool value) const {
    Manager& m = req("Bdd::cofactor");
    m.maybe_gc();
    return Bdd(m, m.cofactor(e_, v, value));
  }
  Bdd restrict_(const Bdd& care) const {
    Manager& m = req(care, "Bdd::restrict_");
    m.maybe_gc();
    return Bdd(m, m.restrict_(e_, care.e_));
  }
  Bdd constrain(const Bdd& care) const {
    Manager& m = req(care, "Bdd::constrain");
    m.maybe_gc();
    return Bdd(m, m.constrain(e_, care.e_));
  }
  Bdd compose(Var v, const Bdd& g) const {
    Manager& m = req(g, "Bdd::compose");
    m.maybe_gc();
    return Bdd(m, m.compose(e_, v, g.e_));
  }
  Bdd exists(Var v) const {
    Manager& m = req("Bdd::exists");
    m.maybe_gc();
    return Bdd(m, m.exists(e_, v));
  }

  [[nodiscard]] Var top_var() const { return req("Bdd::top_var").top_var(e_); }
  [[nodiscard]] std::size_t size() const { return req("Bdd::size").size(e_); }
  [[nodiscard]] std::vector<Var> support() const {
    return req("Bdd::support").support(e_);
  }
  [[nodiscard]] double sat_count(std::uint32_t nvars) const {
    return req("Bdd::sat_count").sat_count(e_, nvars);
  }
  [[nodiscard]] bool eval(const std::vector<bool>& assignment) const {
    return req("Bdd::eval").eval(e_, assignment);
  }

 private:
  /// Handle guard (see class invariant): aborts on an empty handle, or --
  /// for binary operations -- on operands from different managers.
  Manager& req(const char* op) const {
    if (mgr_ == nullptr) detail::invalid_handle(op);
    return *mgr_;
  }
  Manager& req(const Bdd& o, const char* op) const {
    if (mgr_ == nullptr || o.mgr_ != mgr_) detail::invalid_handle(op);
    return *mgr_;
  }

  Manager* mgr_ = nullptr;
  Edge e_ = Edge::one();
};

}  // namespace bds::bdd

template <>
struct std::hash<bds::bdd::Edge> {
  std::size_t operator()(const bds::bdd::Edge& e) const noexcept {
    return std::hash<std::uint32_t>()(e.bits());
  }
};
