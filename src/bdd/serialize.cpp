// Manager lifecycle: reset() and the versioned binary image format
// (serialize/deserialize).
//
// The SoA store makes the image trivial: node identity is the index, so
// dumping the raw arrays (free slots included) preserves the meaning of
// every outstanding Lit. The arrays are written in the host's native byte
// order, so the header carries an endianness tag and the element widths:
// a reader on a host with a different byte order (or a build whose
// Lit/Var/ref types changed width) rejects the image with a typed
// SerializeError instead of silently misreading the arena -- the daemon's
// content-addressed cache makes cross-host images a normal event, not an
// exotic one. Layout:
//
//   u32 magic 'BDSM'   u32 version
//   --- FNV-1a-hashed payload ---
//   u32 endian tag 0x01020304  (reads back reversed on a foreign host)
//   u8 lit_width   u8 var_width   u8 ref_width   u8 reserved(0)
//   u32 num_vars   u32 arena   u32 free_count   u32 root_count
//   var2level [num_vars x u32]         (level2var is its inverse)
//   vars      [arena x u32]            (kVarTerminal = free slot/terminal)
//   thens     [arena x u32 Lit]
//   elses     [arena x u32 Lit]
//   refs      [arena x u16]            (external pins survive the trip)
//   free_list [free_count x u32]       (deterministic allocation after load)
//   roots     [root_count x u32 Lit]   (writer-chosen entry points)
//   --- end of hashed payload ---
//   u64 FNV-1a checksum
//
// The unique-table chains (nexts) are not stored: deserialize rebuilds the
// subtables by inserting live nodes in increasing index order, which is
// deterministic and independent of the writer's chain history. The
// computed table and statistics are not stored either -- a loaded manager
// starts with a cold cache, like a reset one.
//
// deserialize() validates everything (bounds, canonical form, level order,
// free-list consistency, duplicate triples, checksum) against temporaries
// before touching the manager, so a SerializeError leaves the target in
// its pristine state.
#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <type_traits>

#include "bdd/bdd.hpp"
#include "util/error.hpp"

namespace bds::bdd {

namespace {
constexpr std::uint32_t kMagic = 0x4D534442u;  // "BDSM" little-endian
// Version 2 added the endianness tag and element-width fields to the
// hashed payload; version-1 images predate them and are rejected.
constexpr std::uint32_t kFormatVersion = 2;
// Written natively; a foreign-endian reader sees the bytes reversed
// (0x04030201) and can diagnose the byte order precisely.
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint32_t kEndianTagSwapped = 0x04030201u;
// Counts above this are rejected before any allocation: a corrupt header
// must not drive a multi-gigabyte resize. Node indices are 31-bit (one
// Lit bit holds the complement), so the cap loses no real image.
constexpr std::uint32_t kMaxCount = 1u << 30;

struct Fnv1a {
  std::uint64_t h = 14695981039346656037ULL;
  void feed(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
};

[[noreturn]] void fail(const char* what) {
  throw SerializeError(std::string("bdd::Manager::deserialize: ") + what);
}

template <typename T>
void write_pod(std::ostream& os, Fnv1a& sum, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
  sum.feed(&value, sizeof(T));
}

template <typename T>
void write_vec(std::ostream& os, Fnv1a& sum, const std::vector<T>& v) {
  if (v.empty()) return;
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
  sum.feed(v.data(), v.size() * sizeof(T));
}

template <typename T>
T read_pod(std::istream& is, Fnv1a& sum) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) fail("truncated image");
  sum.feed(&value, sizeof(T));
  return value;
}

template <typename T>
std::vector<T> read_vec(std::istream& is, Fnv1a& sum, std::uint32_t count) {
  std::vector<T> v(count);
  if (count != 0) {
    is.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
    if (!is) fail("truncated image");
    sum.feed(v.data(), v.size() * sizeof(T));
  }
  return v;
}
}  // namespace

void Manager::reset() {
  // A reset manager must be indistinguishable from a freshly constructed
  // one -- including the capacity-derived memory_bytes gauge, because the
  // ManagerPool hands reset managers to pipelines whose telemetry traces
  // are guaranteed byte-identical across -j and across runs. The
  // capacity-tracked buffers (the SoA columns, scratch, free list; see
  // update_memory_stats) are therefore shrunk back to their pristine
  // footprint, not just cleared.
  const auto shrink = [](auto& v) {
    v.clear();
    v.shrink_to_fit();
  };
  // The columns get the constructor's exact reservation back; a column
  // still at that capacity is reused in place.
  const auto shrink_column = [](auto& v) {
    if (v.capacity() != kArenaReserve) {
      std::decay_t<decltype(v)> fresh;
      fresh.reserve(kArenaReserve);
      v.swap(fresh);
    } else {
      v.clear();
    }
  };
  shrink_column(vars_);
  shrink_column(thens_);
  shrink_column(elses_);
  shrink_column(nexts_);
  shrink_column(refs_);
  shrink(free_list_);
  subtables_.clear();
  subtable_bucket_bytes_ = 0;
  var2level_.clear();
  level2var_.clear();
  // Same size AND capacity as a fresh manager: the adaptive-growth and GC
  // state below is everything that feeds back into operation behavior, so
  // matching a fresh manager's values makes the replay byte-identical.
  // When the table never grew past its initial size (the common case for
  // pooled cone-sized managers), assign() reuses the existing allocation;
  // a grown table is reallocated back down.
  if (cache_.capacity() > kCacheInitialEntries) {
    std::vector<CacheEntry>(kCacheInitialEntries).swap(cache_);
  } else {
    cache_.assign(kCacheInitialEntries, CacheEntry{});
  }
  cache_lookups_at_resize_ = 0;
  cache_hits_at_resize_ = 0;
  gc_threshold_ = 1u << 14;
  stats_ = ManagerStats{};
  budget_ticks_ = 0;
  visit_epoch_ = 0;
  shrink(visits_);
  shrink(visit_stack_);
  shrink(var_visit_);
  shrink(scratch_mant_);
  shrink(scratch_exp_);
  shrink(scratch_edge_);
  // Re-seed the pinned terminal, exactly as the constructor does.
  vars_.push_back(kVarTerminal);
  thens_.push_back(Edge::one());
  elses_.push_back(Edge::one());
  nexts_.push_back(kNil);
  refs_.push_back(1);
  stats_.live_nodes = 1;
  stats_.peak_live_nodes = 1;
  stats_.allocated_nodes = 1;
  stats_.cache_entries = cache_.size();
  update_memory_stats();
}

void Manager::serialize(std::ostream& os,
                        const std::vector<Edge>& roots) const {
  Fnv1a sum;
  // Magic and version are outside the checksum: they identify the format
  // the checksum itself belongs to.
  os.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  os.write(reinterpret_cast<const char*>(&kFormatVersion),
           sizeof(kFormatVersion));
  write_pod(os, sum, kEndianTag);
  write_pod(os, sum, static_cast<std::uint8_t>(sizeof(Lit)));
  write_pod(os, sum, static_cast<std::uint8_t>(sizeof(Var)));
  write_pod(os, sum, static_cast<std::uint8_t>(sizeof(std::uint16_t)));
  write_pod(os, sum, std::uint8_t{0});  // reserved
  write_pod(os, sum, num_vars());
  write_pod(os, sum, arena_size());
  write_pod(os, sum, static_cast<std::uint32_t>(free_list_.size()));
  write_pod(os, sum, static_cast<std::uint32_t>(roots.size()));
  write_vec(os, sum, var2level_);
  write_vec(os, sum, vars_);
  write_vec(os, sum, thens_);
  write_vec(os, sum, elses_);
  write_vec(os, sum, refs_);
  write_vec(os, sum, free_list_);
  write_vec(os, sum, roots);
  os.write(reinterpret_cast<const char*>(&sum.h), sizeof(sum.h));
}

std::vector<Edge> Manager::deserialize(std::istream& is) {
  if (arena_size() != 1 || num_vars() != 0) {
    detail::invalid_argument(
        "Manager::deserialize",
        "target manager must be freshly constructed or reset() (a populated "
        "manager has live handles the image would invalidate)");
  }

  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!is || magic != kMagic) fail("bad magic (not a manager image)");
  if (version != kFormatVersion) fail("unsupported format version");

  Fnv1a sum;
  // Portability header: the arrays that follow are raw native-endian
  // element dumps, so an image written on a host with a different byte
  // order or different element widths must be rejected, not misread.
  const auto endian = read_pod<std::uint32_t>(is, sum);
  if (endian == kEndianTagSwapped) {
    fail("image was written on a host with the opposite byte order");
  }
  if (endian != kEndianTag) fail("unrecognized endianness tag");
  const auto lit_width = read_pod<std::uint8_t>(is, sum);
  const auto var_width = read_pod<std::uint8_t>(is, sum);
  const auto ref_width = read_pod<std::uint8_t>(is, sum);
  (void)read_pod<std::uint8_t>(is, sum);  // reserved
  if (lit_width != sizeof(Lit) || var_width != sizeof(Var) ||
      ref_width != sizeof(std::uint16_t)) {
    fail("image element widths do not match this build");
  }
  const auto nvars = read_pod<std::uint32_t>(is, sum);
  const auto arena = read_pod<std::uint32_t>(is, sum);
  const auto free_count = read_pod<std::uint32_t>(is, sum);
  const auto root_count = read_pod<std::uint32_t>(is, sum);
  if (arena == 0 || arena > kMaxCount || nvars > kMaxCount ||
      free_count >= arena || root_count > kMaxCount) {
    fail("implausible header counts");
  }
  auto v2l = read_vec<std::uint32_t>(is, sum, nvars);
  auto vars = read_vec<Var>(is, sum, arena);
  auto thens = read_vec<Edge>(is, sum, arena);
  auto elses = read_vec<Edge>(is, sum, arena);
  auto refs = read_vec<std::uint16_t>(is, sum, arena);
  auto free_list = read_vec<std::uint32_t>(is, sum, free_count);
  auto roots = read_vec<Edge>(is, sum, root_count);
  std::uint64_t stored_sum = 0;
  is.read(reinterpret_cast<char*>(&stored_sum), sizeof(stored_sum));
  if (!is) fail("truncated image");
  if (stored_sum != sum.h) fail("checksum mismatch (corrupted image)");

  // Variable order must be a permutation of the levels.
  std::vector<Var> l2v(nvars, kVarTerminal);
  for (Var v = 0; v < nvars; ++v) {
    if (v2l[v] >= nvars || l2v[v2l[v]] != kVarTerminal) {
      fail("variable order is not a permutation");
    }
    l2v[v2l[v]] = v;
  }

  // Slot 0 is the pinned terminal; every other slot is either free (and on
  // the free list exactly once) or a canonical, level-ordered node.
  if (vars[0] != kVarTerminal || !(thens[0] == Edge::one()) ||
      !(elses[0] == Edge::one()) || refs[0] == 0) {
    fail("malformed terminal slot");
  }
  const auto level_of_slot = [&](std::uint32_t idx) {
    return vars[idx] == kVarTerminal ? kLevelTerminal : v2l[vars[idx]];
  };
  std::uint32_t free_slots = 0;
  for (std::uint32_t i = 1; i < arena; ++i) {
    if (vars[i] == kVarTerminal) {
      ++free_slots;
      continue;
    }
    if (vars[i] >= nvars) fail("node variable out of range");
    const Edge hi = thens[i];
    const Edge lo = elses[i];
    if (hi.complemented()) fail("non-canonical node (complemented 1-edge)");
    if (hi == lo) fail("redundant node (equal children)");
    if (hi.node() >= arena || lo.node() >= arena) {
      fail("child index out of range");
    }
    if (vars[hi.node()] == kVarTerminal && hi.node() != 0) {
      fail("child is a free slot");
    }
    if (vars[lo.node()] == kVarTerminal && lo.node() != 0) {
      fail("child is a free slot");
    }
    if (level_of_slot(hi.node()) <= v2l[vars[i]] ||
        level_of_slot(lo.node()) <= v2l[vars[i]]) {
      fail("level order violated");
    }
  }
  std::vector<bool> freed(arena, false);
  for (const std::uint32_t f : free_list) {
    if (f == 0 || f >= arena || vars[f] != kVarTerminal || freed[f]) {
      fail("malformed free list");
    }
    freed[f] = true;
  }
  if (free_slots != free_count) fail("free list does not cover free slots");
  for (const Edge r : roots) {
    if (r.node() >= arena) fail("root index out of range");
    if (vars[r.node()] == kVarTerminal && r.node() != 0) {
      fail("root is a free slot");
    }
  }
  // A duplicate (var, hi, lo) triple would silently break canonicity once
  // chained; detect it before committing anything.
  {
    std::vector<std::array<std::uint32_t, 3>> triples;
    triples.reserve(arena);
    for (std::uint32_t i = 1; i < arena; ++i) {
      if (vars[i] == kVarTerminal) continue;
      triples.push_back({vars[i], thens[i].bits(), elses[i].bits()});
    }
    std::sort(triples.begin(), triples.end());
    if (std::adjacent_find(triples.begin(), triples.end()) != triples.end()) {
      fail("duplicate node triple (non-canonical image)");
    }
  }

  // Validation passed -- commit. Nothing below throws SerializeError, so a
  // rejected image never leaves a half-loaded manager.
  vars_ = std::move(vars);
  thens_ = std::move(thens);
  elses_ = std::move(elses);
  refs_ = std::move(refs);
  nexts_.assign(arena, kNil);
  free_list_ = std::move(free_list);
  var2level_ = std::move(v2l);
  level2var_ = std::move(l2v);
  subtables_.clear();
  subtable_bucket_bytes_ = 0;
  for (Var v = 0; v < nvars; ++v) {
    Subtable st;
    st.buckets.assign(kInitialBuckets, kNil);
    st.mask = kInitialBuckets - 1;
    subtable_bucket_bytes_ += kInitialBuckets * sizeof(std::uint32_t);
    subtables_.push_back(std::move(st));
  }
  // Rebuild the unique subtables in increasing index order (deterministic,
  // independent of the writer's chain history).
  for (std::uint32_t i = 1; i < arena; ++i) {
    if (vars_[i] != kVarTerminal) unique_insert(i);
  }

  std::size_t live = 0;
  std::size_t saturated = 0;
  for (std::uint32_t i = 0; i < arena; ++i) {
    if (i != 0 && vars_[i] == kVarTerminal) continue;  // free slot
    if (refs_[i] > 0) ++live;
    // Saturation is a property of the count itself, so the pinned set --
    // and the counter naming it -- survives the serialization round trip.
    if (refs_[i] == kRefSaturated) ++saturated;
  }
  stats_.live_nodes = live;
  stats_.peak_live_nodes = live;
  stats_.saturated_refs = saturated;
  stats_.allocated_nodes = arena;
  update_memory_stats();
  return roots;
}

}  // namespace bds::bdd
