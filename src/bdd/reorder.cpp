// Dynamic variable reordering: Rudell sifting built on in-place adjacent
// level swaps. BDS reorders each supernode BDD before decomposition
// (Section IV-C, citing [30]).
//
// The swap rewrites the nodes of the upper variable in place, so node
// identities -- and therefore all outstanding `Bdd` handles and cached
// results -- remain valid: a node keeps denoting the same Boolean function
// throughout reordering.
#include <algorithm>
#include <cassert>
#include <numeric>

#include "bdd/bdd.hpp"

namespace bds::bdd {

std::uint32_t Manager::subtable_live(Var v) const {
  std::uint32_t live = 0;
  const Subtable& st = subtables_[v];
  for (std::uint32_t head : st.buckets) {
    for (std::uint32_t i = head; i != kNil; i = nexts_[i]) {
      if (refs_[i] > 0) ++live;
    }
  }
  return live;
}

void Manager::swap_levels(std::uint32_t level) {
  assert(level + 1 < num_vars());
  const Var x = level2var_[level];      // upper variable, moves down
  const Var y = level2var_[level + 1];  // lower variable, moves up

  // Collect all nodes currently labelled x and empty its subtable; the
  // rewrite below re-creates x-nodes through mk(), which must not collide
  // with stale chains.
  std::vector<std::uint32_t> xs;
  {
    Subtable& st = subtables_[x];
    for (std::uint32_t& head : st.buckets) {
      for (std::uint32_t i = head; i != kNil;) {
        const std::uint32_t next = nexts_[i];
        nexts_[i] = kNil;
        xs.push_back(i);
        i = next;
      }
      head = kNil;
    }
    st.count = 0;
  }

  // Pass 1: nodes independent of y keep their structure; they simply end up
  // below y. Reinsert them first so mk() can find them during pass 2.
  std::vector<std::uint32_t> moving;
  for (const std::uint32_t i : xs) {
    if (top_var(thens_[i]) == y || top_var(elses_[i]) == y) {
      moving.push_back(i);
    } else {
      unique_insert(i);
    }
  }

  // Pass 2: rewrite each dependent node (x, F1, F0) into
  // (y, mk(x, F11, F01), mk(x, F10, F00)) in place.
  for (const std::uint32_t i : moving) {
    const Edge hi = thens_[i];  // regular by canonical form
    const Edge lo = elses_[i];
    Edge f11, f10, f01, f00;
    if (top_var(hi) == y) {
      f11 = hi_of(hi);
      f10 = lo_of(hi);
    } else {
      f11 = f10 = hi;
    }
    if (top_var(lo) == y) {
      f01 = hi_of(lo);
      f00 = lo_of(lo);
    } else {
      f01 = f00 = lo;
    }
    // f11 is regular (hi edge of a regular edge), so new_hi is regular and
    // the rewritten node stays canonical without flipping its polarity --
    // which is what keeps outside references valid.
    const Edge new_hi = mk(x, f11, f01);
    const Edge new_lo = mk(x, f10, f00);
    assert(!new_hi.complemented());
    assert(!(new_hi == new_lo) && "swap produced a redundant node");
    ref(new_hi);
    ref(new_lo);
    deref(thens_[i]);
    deref(elses_[i]);
    vars_[i] = y;
    thens_[i] = new_hi;
    elses_[i] = new_lo;
    unique_insert(i);
  }

  level2var_[level] = y;
  level2var_[level + 1] = x;
  var2level_[x] = level + 1;
  var2level_[y] = level;
}

void Manager::sift_var(Var v, double max_growth) {
  const std::size_t start_size = stats_.live_nodes;
  const std::size_t limit =
      static_cast<std::size_t>(static_cast<double>(start_size) * max_growth) + 4;
  const std::uint32_t n = num_vars();
  const std::uint32_t start_level = var2level_[v];

  std::uint32_t best_level = start_level;
  std::size_t best_size = start_size;

  // Sift toward the nearer end first, then sweep to the other end.
  const bool down_first = (n - start_level) <= start_level;

  const auto move_down = [&]() {
    while (var2level_[v] + 1 < n) {
      swap_levels(var2level_[v]);
      if (stats_.live_nodes < best_size) {
        best_size = stats_.live_nodes;
        best_level = var2level_[v];
      }
      if (stats_.live_nodes > limit) break;
    }
  };
  const auto move_up = [&]() {
    while (var2level_[v] > 0) {
      swap_levels(var2level_[v] - 1);
      if (stats_.live_nodes < best_size) {
        best_size = stats_.live_nodes;
        best_level = var2level_[v];
      }
      if (stats_.live_nodes > limit) break;
    }
  };

  if (down_first) {
    move_down();
    move_up();
  } else {
    move_up();
    move_down();
  }
  // Return to the best position seen.
  while (var2level_[v] < best_level) swap_levels(var2level_[v]);
  while (var2level_[v] > best_level) swap_levels(var2level_[v] - 1);
}

void Manager::reorder_sift(double max_growth) {
  ++stats_.reorderings;
  gc();
  const std::uint32_t n = num_vars();
  if (n < 2) return;

  for (int pass = 0; pass < 2; ++pass) {
    const std::size_t before = stats_.live_nodes;
    // Process variables from the largest subtable down, as Rudell does.
    std::vector<Var> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::vector<std::uint32_t> weight(n);
    for (Var v = 0; v < n; ++v) weight[v] = subtable_live(v);
    std::stable_sort(order.begin(), order.end(),
                     [&](Var a, Var b) { return weight[a] > weight[b]; });
    for (Var v : order) {
      if (weight[v] == 0) continue;
      // Safe point between sifts: each sift_var() completes its restore
      // walk, so aborting here leaves a canonical manager (in a possibly
      // suboptimal order). The deadline is checked unamortized -- one
      // sift can be long, and reordering is where runaway time goes.
      if (budget_) {
        budget_->check_deadline();
        budget_check_slow();
      }
      sift_var(v, max_growth);
      gc();
    }
    const std::size_t after = stats_.live_nodes;
    if (after * 50 >= before * 49) break;  // < 2% improvement: stop
  }
  update_memory_stats();
}

void Manager::set_order(const std::vector<Var>& order) {
  // Validate up front, release builds included: a non-permutation would
  // silently scramble var2level_ mid-way through the bubble swaps, leaving
  // the manager corrupted far from the misuse site. Because validation
  // completes before any swap, rejection is recoverable -- the manager is
  // untouched -- so it throws a typed error instead of aborting.
  if (order.size() != num_vars()) {
    throw Error(
        "Manager::set_order: order must list every variable exactly once "
        "(size differs from num_vars)");
  }
  std::vector<bool> seen(num_vars(), false);
  for (const Var v : order) {
    if (v >= num_vars()) {
      throw Error(
          "Manager::set_order: order names a variable that does not exist");
    }
    if (seen[v]) {
      throw Error(
          "Manager::set_order: order repeats a variable (not a permutation)");
    }
    seen[v] = true;
  }
  gc();
  for (std::uint32_t target = 0; target < order.size(); ++target) {
    std::uint32_t cur = var2level_[order[target]];
    assert(cur >= target && "level invariant broken during reorder");
    while (cur > target) {
      swap_levels(cur - 1);
      --cur;
    }
  }
}

}  // namespace bds::bdd
