// Sparse algebraic representation for the SIS-style baseline.
//
// Extraction and resubstitution operate across nodes, over the space of all
// network signals; a dense 2-bit-per-variable cube would be quadratically
// large there, so the baseline uses the classic sparse form: a cube is a
// sorted vector of literals, a literal is 2*signal + phase.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bds::sis {

using Lit = std::uint32_t;
inline constexpr Lit lit(std::uint32_t signal, bool negated) {
  return 2 * signal + (negated ? 1u : 0u);
}
inline constexpr std::uint32_t lit_signal(Lit l) { return l / 2; }
inline constexpr bool lit_negated(Lit l) { return (l & 1) != 0; }

/// A product term: sorted, duplicate-free literal vector. The empty cube is
/// the constant-1 product.
using SparseCube = std::vector<Lit>;

/// Sum of products over network signals. An empty cover is constant 0.
struct SparseSop {
  std::vector<SparseCube> cubes;

  bool is_zero() const { return cubes.empty(); }
  bool has_const_cube() const {
    for (const SparseCube& c : cubes) {
      if (c.empty()) return true;
    }
    return false;
  }
  std::size_t literal_count() const {
    std::size_t n = 0;
    for (const SparseCube& c : cubes) n += c.size();
    return n;
  }
  /// Canonical form: cubes sorted and deduplicated (no containment check).
  void normalize();
  /// Serialized canonical key, usable as a hash-map key for divisors.
  std::string key() const;
  /// Distinct signals used.
  std::vector<std::uint32_t> support() const;

  bool operator==(const SparseSop&) const = default;
};

// ---- cube algebra --------------------------------------------------------------

/// True if a (as a literal set) contains all of b's literals.
bool cube_contains(const SparseCube& a, const SparseCube& b);
/// a \ b; requires cube_contains(a, b).
SparseCube cube_divide(const SparseCube& a, const SparseCube& b);
/// Union of literal sets; returns nullopt-like empty optional semantics via
/// `ok` when the product is empty (x & !x).
bool cube_product(const SparseCube& a, const SparseCube& b, SparseCube& out);
/// Literals common to both cubes.
SparseCube cube_intersect(const SparseCube& a, const SparseCube& b);

// ---- cover algebra --------------------------------------------------------------

/// Largest cube dividing every cube of f (empty for a cube-free cover).
SparseCube common_cube(const SparseSop& f);
/// Weak division f / d: returns {quotient, remainder}.
std::pair<SparseSop, SparseSop> divide(const SparseSop& f, const SparseSop& d);
/// Division by one cube.
SparseSop divide_by_cube(const SparseSop& f, const SparseCube& d);
/// Algebraic product d * q (drops empty cube products).
SparseSop product(const SparseSop& a, const SparseSop& b);

// ---- kernels (Brayton/McMullen) --------------------------------------------------

struct KernelPair {
  SparseCube cokernel;
  SparseSop kernel;  ///< cube-free quotient f / cokernel
};

/// All kernels of f (the cover itself included when cube-free), bounded by
/// `max_kernels` as a safety valve.
std::vector<KernelPair> all_kernels(const SparseSop& f,
                                    std::size_t max_kernels = 256);

/// Level-0 kernels only (kernels having no kernels but themselves).
std::vector<KernelPair> level0_kernels(const SparseSop& f,
                                       std::size_t max_kernels = 256);

}  // namespace bds::sis
