// Algebraic factoring of SOP covers into AND/OR trees (SIS `factor`).
// Used by the baseline for literal-count costing and by the technology
// mapper to decompose node functions into two-input subject graphs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sis/algebra.hpp"

namespace bds::sis {

enum class FactorKind : std::uint8_t {
  kConst0,
  kConst1,
  kLit,  ///< one literal (signal + phase)
  kAnd,
  kOr,
};

struct FactorNode {
  FactorKind kind = FactorKind::kConst0;
  Lit literal = 0;
  std::int32_t a = -1;
  std::int32_t b = -1;
};

/// A factored form: binary AND/OR tree over literals.
struct FactoredForm {
  std::vector<FactorNode> nodes;
  std::int32_t root = -1;

  std::size_t literal_count() const;
  bool eval(const std::vector<bool>& signal_values) const;
  std::string to_string(
      const std::vector<std::string>& signal_names = {}) const;
};

/// Quick-factor: recursive weak division by the most promising divisor
/// (kernel-guided). Input is a sparse cover over signal ids.
FactoredForm factor(const SparseSop& f);

}  // namespace bds::sis
