#include "sis/script.hpp"

#include "util/timer.hpp"

namespace bds::sis {

SisStats script_rugged(net::Network& net, const SisOptions& opts) {
  SisStats stats;
  Timer t;

  // sweep; eliminate -1
  stats.sweep = net::sweep(net);
  {
    SisOptions strict = opts;
    strict.eliminate_threshold = -1;
    stats.eliminated += eliminate_literals(net, strict);
  }
  // simplify
  simplify_nodes(net);
  net::sweep(net);
  // eliminate 5 (merge mild reconvergence before extraction)
  {
    SisOptions loose = opts;
    loose.eliminate_threshold = 5;
    stats.eliminated += eliminate_literals(net, loose);
  }
  // gkx/gcx-style extraction and resubstitution
  stats.divisors_extracted += extract_divisors(net, opts);
  stats.resubstitutions += resubstitute(net, opts);
  stats.divisors_extracted += extract_divisors(net, opts);
  // cleanup: sweep; eliminate -1; simplify
  net::sweep(net);
  {
    SisOptions strict = opts;
    strict.eliminate_threshold = -1;
    stats.eliminated += eliminate_literals(net, strict);
  }
  simplify_nodes(net);
  net::sweep(net);
  // full_simplify: satisfiability-don't-care minimization (the closing
  // step of script.rugged; skipped automatically on BDD-infeasible
  // circuits).
  stats.full_simplified = full_simplify(net, {}, &stats.peak_bdd_nodes);
  net::sweep(net);

  stats.seconds_total = t.seconds();
  return stats;
}

}  // namespace bds::sis
