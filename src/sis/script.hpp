// The baseline's `script.rugged` analog: the standard SIS recipe of sweep,
// eliminate, simplify, extraction, and resubstitution that the paper
// compares BDS against (Section V).
#pragma once

#include "net/network.hpp"
#include "sis/optimize.hpp"

namespace bds::sis {

struct SisStats {
  net::SweepStats sweep;
  std::size_t eliminated = 0;
  std::size_t divisors_extracted = 0;
  std::size_t resubstitutions = 0;
  std::size_t full_simplified = 0;
  std::size_t peak_bdd_nodes = 0;  ///< global-BDD peak of full_simplify
  double seconds_total = 0.0;
};

/// Runs the full algebraic flow in place and returns statistics. The result
/// is a multilevel network of SOP nodes ready for technology mapping.
SisStats script_rugged(net::Network& net, const SisOptions& opts = {});

}  // namespace bds::sis
