// The baseline's `script.rugged` analog: the standard SIS recipe of sweep,
// eliminate, simplify, extraction, and resubstitution that the paper
// compares BDS against (Section V).
#pragma once

#include <vector>

#include "net/network.hpp"
#include "opt/pass.hpp"
#include "sis/optimize.hpp"

namespace bds::sis {

struct SisStats {
  net::SweepStats sweep;
  std::size_t eliminated = 0;
  std::size_t divisors_extracted = 0;
  std::size_t resubstitutions = 0;
  std::size_t full_simplified = 0;
  std::size_t peak_bdd_nodes = 0;  ///< global-BDD peak of full_simplify
  double seconds_total = 0.0;
  /// Per-pass breakdown of the pipeline that ran (opt/manager.hpp).
  std::vector<opt::PassStats> passes;
};

/// Runs the full algebraic flow in place and returns statistics. The result
/// is a multilevel network of SOP nodes ready for technology mapping.
///
/// Implemented (src/opt/sis_flow.cpp) as a thin wrapper: the recipe is the
/// pipeline script `opt::rugged_script(opts)` run through
/// `opt::PassManager`.
SisStats script_rugged(net::Network& net, const SisOptions& opts = {});

}  // namespace bds::sis
