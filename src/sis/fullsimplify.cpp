// full_simplify: node minimization with satisfiability don't cares,
// computed with global BDDs (the expensive pass that gives SIS its area
// edge on control logic -- the paper names its absence in BDS as the cause
// of the dalu/vda gap -- and a large share of its runtime).
#include <functional>

#include "bdd/bdd.hpp"
#include "sis/espresso.hpp"
#include "sis/optimize.hpp"

namespace bds::sis {

using bdd::Bdd;
using bdd::Edge;
using bdd::Manager;
using net::Network;
using net::NodeId;

namespace {

/// Enumerates the cubes (1-paths) of a BDD whose support lies in the first
/// `width` variables. Returns false if more than `max_cubes` paths exist.
bool bdd_to_cubes(const Manager& mgr, Edge root, unsigned width,
                  std::size_t max_cubes, sop::Sop& out) {
  bool ok = true;
  sop::Cube current(width);
  const std::function<void(Edge)> walk = [&](Edge e) {
    if (!ok) return;
    if (e.is_zero()) return;
    if (e.is_one()) {
      if (out.cube_count() >= max_cubes) {
        ok = false;
        return;
      }
      out.add_cube(current);
      return;
    }
    const bdd::Var v = mgr.top_var(e);
    if (v >= width) {
      ok = false;  // stray variable outside the y-space
      return;
    }
    current.set(v, sop::Literal::kPos);
    walk(mgr.hi_of(e));
    current.set(v, sop::Literal::kNeg);
    walk(mgr.lo_of(e));
    current.set(v, sop::Literal::kAbsent);
  };
  walk(root);
  return ok;
}

}  // namespace

std::size_t full_simplify(Network& net, const FullSimplifyOptions& opts,
                          std::size_t* peak_bdd_nodes) {
  std::size_t improved = 0;
  Manager mgr;
  struct PeakReporter {
    const Manager& m;
    std::size_t* out;
    ~PeakReporter() {
      if (out != nullptr) *out = m.stats().peak_live_nodes;
    }
  } reporter{mgr, peak_bdd_nodes};
  // y-variables for the fanin space sit on top of the order.
  for (unsigned i = 0; i < opts.max_fanins; ++i) mgr.new_var();
  std::vector<bdd::Var> pi_var(net.raw_size(), 0);
  for (const NodeId pi : net.inputs()) pi_var[pi] = mgr.new_var();

  // Global BDDs over the primary inputs, in topological order.
  std::vector<Bdd> global(net.raw_size());
  for (const NodeId pi : net.inputs()) global[pi] = mgr.var(pi_var[pi]);
  const auto order = net.topo_order();
  bool reordered = false;
  for (const NodeId id : order) {
    const net::Node& n = net.node(id);
    Bdd f = mgr.zero();
    for (const sop::Cube& c : n.func.cubes()) {
      Bdd term = mgr.one();
      for (unsigned i = 0; i < c.num_vars(); ++i) {
        const sop::Literal l = c.get(i);
        if (l == sop::Literal::kAbsent) continue;
        const Bdd& in = global[n.fanins[i]];
        term = term & (l == sop::Literal::kPos ? in : !in);
      }
      f = f | term;
      if (mgr.live_nodes() > opts.max_manager_nodes) break;
    }
    global[id] = f;
    if (mgr.live_nodes() > opts.reorder_threshold && !reordered) {
      // Dynamic variable reordering, as SIS does when global BDDs grow
      // (datapath circuits like rotators need control-before-data orders).
      mgr.reorder_sift();
      reordered = true;
    }
    if (mgr.live_nodes() > opts.max_manager_nodes) {
      mgr.reorder_sift();
      if (mgr.live_nodes() > opts.max_manager_nodes) {
        return improved;  // circuit too large for global BDDs: give up
      }
      reordered = true;
    }
  }

  for (const NodeId id : order) {
    const net::Node& n = net.node(id);
    const unsigned k = static_cast<unsigned>(n.fanins.size());
    if (k < 2 || k > opts.max_fanins) continue;
    if (n.func.cubes().empty() || n.func.has_full_cube()) continue;

    // Characteristic function of reachable fanin combinations:
    // chi(y, x) = AND_i (y_i xnor g_i(x)).
    Bdd chi = mgr.one();
    for (unsigned i = 0; i < k; ++i) {
      chi = chi & mgr.var(i).xnor(global[n.fanins[i]]);
    }
    // Image over y: quantify away the primary-input variables.
    bool aborted = false;
    for (const bdd::Var v : chi.support()) {
      if (v < opts.max_fanins) continue;
      chi = chi.exists(v);
      if (mgr.live_nodes() > opts.max_manager_nodes) {
        aborted = true;
        break;
      }

    }
    if (aborted) {
      mgr.gc();
      continue;
    }
    const Bdd dc_bdd = !chi;  // unreachable combinations are don't cares
    if (dc_bdd.is_zero()) continue;

    sop::Sop dc(k);
    if (!bdd_to_cubes(mgr, dc_bdd.edge(), k, opts.max_dc_cubes, dc)) continue;
    dc.minimize_scc();

    const sop::Sop minimized = espresso_lite(n.func, dc);
    if (minimized.literal_count() < n.func.literal_count()) {
      net.rewrite_node(id, n.fanins, minimized);
      ++improved;
    }
  }
  return improved;
}

}  // namespace bds::sis
