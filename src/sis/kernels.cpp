// Sparse cube/cover algebra and recursive kernel extraction.
#include <algorithm>
#include <map>

#include "sis/algebra.hpp"

namespace bds::sis {

void SparseSop::normalize() {
  for (SparseCube& c : cubes) std::sort(c.begin(), c.end());
  std::sort(cubes.begin(), cubes.end());
  cubes.erase(std::unique(cubes.begin(), cubes.end()), cubes.end());
}

std::string SparseSop::key() const {
  SparseSop copy = *this;
  copy.normalize();
  std::string k;
  for (const SparseCube& c : copy.cubes) {
    for (const Lit l : c) {
      k += std::to_string(l);
      k += ',';
    }
    k += ';';
  }
  return k;
}

std::vector<std::uint32_t> SparseSop::support() const {
  std::vector<std::uint32_t> s;
  for (const SparseCube& c : cubes) {
    for (const Lit l : c) s.push_back(lit_signal(l));
  }
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
  return s;
}

bool cube_contains(const SparseCube& a, const SparseCube& b) {
  return std::includes(a.begin(), a.end(), b.begin(), b.end());
}

SparseCube cube_divide(const SparseCube& a, const SparseCube& b) {
  SparseCube out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

bool cube_product(const SparseCube& a, const SparseCube& b, SparseCube& out) {
  out.clear();
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  // Empty product iff both phases of some signal are present (adjacent
  // after sorting).
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (lit_signal(out[i]) == lit_signal(out[i + 1])) return false;
  }
  return true;
}

SparseCube cube_intersect(const SparseCube& a, const SparseCube& b) {
  SparseCube out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

SparseCube common_cube(const SparseSop& f) {
  if (f.cubes.empty()) return {};
  SparseCube common = f.cubes.front();
  for (std::size_t i = 1; i < f.cubes.size() && !common.empty(); ++i) {
    common = cube_intersect(common, f.cubes[i]);
  }
  return common;
}

SparseSop divide_by_cube(const SparseSop& f, const SparseCube& d) {
  SparseSop q;
  for (const SparseCube& c : f.cubes) {
    if (cube_contains(c, d)) q.cubes.push_back(cube_divide(c, d));
  }
  return q;
}

std::pair<SparseSop, SparseSop> divide(const SparseSop& f,
                                       const SparseSop& d) {
  if (d.cubes.empty()) return {SparseSop{}, f};
  SparseSop quotient = divide_by_cube(f, d.cubes.front());
  quotient.normalize();
  for (std::size_t i = 1; i < d.cubes.size() && !quotient.cubes.empty(); ++i) {
    SparseSop qi = divide_by_cube(f, d.cubes[i]);
    qi.normalize();
    std::vector<SparseCube> inter;
    std::set_intersection(quotient.cubes.begin(), quotient.cubes.end(),
                          qi.cubes.begin(), qi.cubes.end(),
                          std::back_inserter(inter));
    quotient.cubes = std::move(inter);
  }
  const SparseSop prod = product(d, quotient);
  SparseSop remainder;
  for (const SparseCube& c : f.cubes) {
    if (std::find(prod.cubes.begin(), prod.cubes.end(), c) ==
        prod.cubes.end()) {
      remainder.cubes.push_back(c);
    }
  }
  return {std::move(quotient), std::move(remainder)};
}

SparseSop product(const SparseSop& a, const SparseSop& b) {
  SparseSop result;
  SparseCube tmp;
  for (const SparseCube& ca : a.cubes) {
    for (const SparseCube& cb : b.cubes) {
      if (cube_product(ca, cb, tmp)) result.cubes.push_back(tmp);
    }
  }
  result.normalize();
  return result;
}

namespace {

/// Occurrence count per literal.
std::map<Lit, unsigned> literal_counts(const SparseSop& f) {
  std::map<Lit, unsigned> counts;
  for (const SparseCube& c : f.cubes) {
    for (const Lit l : c) ++counts[l];
  }
  return counts;
}

void kernels_rec(const SparseSop& f, Lit min_lit,
                 std::vector<KernelPair>& out, const SparseCube& cokernel,
                 std::size_t max_kernels) {
  if (out.size() >= max_kernels) return;
  const auto counts = literal_counts(f);
  for (const auto& [l, count] : counts) {
    if (count < 2 || l < min_lit) continue;
    SparseSop sub = divide_by_cube(f, {l});
    SparseCube cc = common_cube(sub);
    // Largest co-kernel cube for this branch includes l itself.
    SparseCube full_cc;
    cube_product(cc, {l}, full_cc);
    // Prune duplicate enumeration: if the common cube contains a literal
    // smaller than l, this kernel was found on an earlier branch.
    bool duplicate = false;
    for (const Lit x : cc) {
      if (x < l) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    // Make the quotient cube-free.
    if (!cc.empty()) {
      for (SparseCube& c : sub.cubes) c = cube_divide(c, cc);
    }
    sub.normalize();
    SparseCube branch_cokernel;
    cube_product(cokernel, full_cc, branch_cokernel);
    kernels_rec(sub, l + 1, out, branch_cokernel, max_kernels);
    if (out.size() < max_kernels) {
      out.push_back({branch_cokernel, std::move(sub)});
    }
  }
}

}  // namespace

std::vector<KernelPair> all_kernels(const SparseSop& f,
                                    std::size_t max_kernels) {
  std::vector<KernelPair> out;
  SparseSop g = f;
  g.normalize();
  const SparseCube cc = common_cube(g);
  if (!cc.empty()) {
    for (SparseCube& c : g.cubes) c = cube_divide(c, cc);
    g.normalize();
  }
  kernels_rec(g, 0, out, cc, max_kernels);
  if (g.cubes.size() > 1) out.push_back({cc, std::move(g)});
  return out;
}

std::vector<KernelPair> level0_kernels(const SparseSop& f,
                                       std::size_t max_kernels) {
  std::vector<KernelPair> all = all_kernels(f, max_kernels);
  std::vector<KernelPair> out;
  for (KernelPair& kp : all) {
    const auto counts = literal_counts(kp.kernel);
    bool level0 = true;
    for (const auto& [l, count] : counts) {
      if (count >= 2) {
        level0 = false;
        break;
      }
    }
    if (level0) out.push_back(std::move(kp));
  }
  return out;
}

}  // namespace bds::sis
