// Network-level algebraic optimization passes of the SIS-style baseline:
// literal-count eliminate, kernel/cube extraction (fast-extract style), and
// algebraic resubstitution. All passes preserve network semantics and are
// verified by the test suite against simulation and BDD equivalence.
#pragma once

#include <cstddef>

#include "net/network.hpp"
#include "sis/algebra.hpp"

namespace bds::sis {

struct SisOptions {
  /// Collapse a node when the total literal-count change is <= threshold.
  int eliminate_threshold = -1;
  /// Eliminate pass limit.
  unsigned eliminate_passes = 4;
  /// Never let a substituted cover exceed this many cubes.
  std::size_t max_node_cubes = 5000;
  /// Kernel cap per node during extraction.
  std::size_t max_kernels = 64;
  /// Extraction pass limit (each pass may introduce many divisors).
  unsigned extract_passes = 12;
};

/// Converts a node's local cover into the sparse global-signal form.
SparseSop to_sparse(const net::Network& net, net::NodeId id);
/// Installs a sparse cover (over signal ids) as the node's function.
void set_from_sparse(net::Network& net, net::NodeId id, const SparseSop& f);

/// SIS `eliminate`: collapses nodes into their fanouts when the literal
/// saving meets the threshold. Returns the number of collapsed nodes.
std::size_t eliminate_literals(net::Network& net, const SisOptions& opts);

/// Fast-extract style common-divisor extraction (kernels and cubes).
/// Returns the number of new divisor nodes created.
std::size_t extract_divisors(net::Network& net, const SisOptions& opts);

/// Algebraic resubstitution of existing nodes into each other.
/// Returns the number of successful substitutions.
std::size_t resubstitute(net::Network& net, const SisOptions& opts);

/// Per-node two-level minimization (espresso-lite, no external don't
/// cares) -- SIS `simplify -m nocomp`.
void simplify_nodes(net::Network& net);

struct FullSimplifyOptions {
  /// Nodes with more fanins than this are skipped.
  unsigned max_fanins = 10;
  /// Abort threshold for the global-BDD manager.
  std::size_t max_manager_nodes = 200'000;
  /// Trigger dynamic variable reordering past this many live nodes.
  std::size_t reorder_threshold = 30'000;
  /// Skip a node when its don't-care set needs more cubes than this.
  std::size_t max_dc_cubes = 64;
};

/// SIS `full_simplify`: per-node minimization with satisfiability don't
/// cares computed from global BDDs. Returns the number of improved nodes.
/// Gives up gracefully (returning early) on circuits whose global BDDs
/// exceed the node budget. `peak_bdd_nodes`, when given, receives the
/// manager's live-node high-watermark (the Table I memory comparison).
std::size_t full_simplify(net::Network& net,
                          const FullSimplifyOptions& opts = {},
                          std::size_t* peak_bdd_nodes = nullptr);

}  // namespace bds::sis
