// Eliminate / extract / resubstitute passes over Boolean networks.
#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

#include "sis/optimize.hpp"

#include "sis/espresso.hpp"

namespace bds::sis {

using net::Network;
using net::NodeId;
using sop::Cube;
using sop::Literal;
using sop::Sop;

SparseSop to_sparse(const Network& net, NodeId id) {
  const net::Node& n = net.node(id);
  SparseSop f;
  for (const Cube& c : n.func.cubes()) {
    SparseCube sc;
    for (unsigned i = 0; i < c.num_vars(); ++i) {
      const Literal l = c.get(i);
      if (l == Literal::kAbsent) continue;
      sc.push_back(lit(n.fanins[i], l == Literal::kNeg));
    }
    std::sort(sc.begin(), sc.end());
    f.cubes.push_back(std::move(sc));
  }
  f.normalize();
  return f;
}

void set_from_sparse(Network& net, NodeId id, const SparseSop& f) {
  const std::vector<std::uint32_t> signals = f.support();
  std::vector<NodeId> fanins(signals.begin(), signals.end());
  std::unordered_map<std::uint32_t, unsigned> pos;
  for (unsigned i = 0; i < signals.size(); ++i) pos.emplace(signals[i], i);
  Sop dense(static_cast<unsigned>(fanins.size()));
  for (const SparseCube& sc : f.cubes) {
    Cube c(static_cast<unsigned>(fanins.size()));
    for (const Lit l : sc) {
      c.set(pos.at(lit_signal(l)),
            lit_negated(l) ? Literal::kNeg : Literal::kPos);
    }
    dense.add_cube(c);
  }
  dense.minimize_scc();
  net.rewrite_node(id, std::move(fanins), std::move(dense));
}

namespace {

/// Substitutes node `src`'s cover (and its complement where needed) into a
/// sparse cover that references it as a literal. Returns false if the
/// result would exceed the cube cap.
bool substitute_signal(SparseSop& f, std::uint32_t src,
                       const SparseSop& src_on, const SparseSop& src_off,
                       std::size_t max_cubes) {
  SparseSop out;
  SparseCube tmp;
  for (const SparseCube& c : f.cubes) {
    const Lit pos = lit(src, false);
    const Lit neg = lit(src, true);
    const bool has_pos = std::binary_search(c.begin(), c.end(), pos);
    const bool has_neg = std::binary_search(c.begin(), c.end(), neg);
    if (!has_pos && !has_neg) {
      out.cubes.push_back(c);
    } else {
      SparseCube base = c;
      base.erase(std::remove_if(base.begin(), base.end(),
                                [&](Lit l) { return l == pos || l == neg; }),
                 base.end());
      const SparseSop& expansion = has_pos ? src_on : src_off;
      for (const SparseCube& e : expansion.cubes) {
        if (cube_product(base, e, tmp)) out.cubes.push_back(tmp);
      }
    }
    if (out.cubes.size() > max_cubes) return false;
  }
  out.normalize();
  f = std::move(out);
  return true;
}

}  // namespace

std::size_t eliminate_literals(Network& net, const SisOptions& opts) {
  std::size_t collapsed = 0;
  std::vector<bool> is_po(net.raw_size(), false);
  for (const auto& [name, driver] : net.outputs()) {
    if (driver != net::kNoNode) is_po[driver] = true;
  }

  for (unsigned pass = 0; pass < opts.eliminate_passes; ++pass) {
    bool changed = false;
    // Superset fanout lists, maintained as substitutions add fanin edges;
    // actual consumers are re-derived from current fanins below.
    auto fanouts = net.fanout_lists();
    const auto order = net.topo_order();
    for (const NodeId id : order) {
      if (is_po[id] || fanouts[id].empty()) continue;
      // Recompute current consumers (fanout list may be stale after
      // earlier substitutions in this pass).
      std::vector<NodeId> consumers;
      for (const NodeId m : fanouts[id]) {
        const auto& fi = net.node(m).fanins;
        if (std::find(fi.begin(), fi.end(), id) != fi.end()) {
          consumers.push_back(m);
        }
      }
      if (consumers.empty()) continue;

      const SparseSop on = to_sparse(net, id);
      const unsigned own_lits = net.node(id).func.literal_count();
      // Complement needed only when a consumer uses the negative literal.
      bool need_off = false;
      for (const NodeId m : consumers) {
        const SparseSop fm = to_sparse(net, m);
        for (const SparseCube& c : fm.cubes) {
          if (std::binary_search(c.begin(), c.end(), lit(id, true))) {
            need_off = true;
            break;
          }
        }
      }
      SparseSop off;
      if (need_off) {
        // Complement on the node's dense local cover, then translate.
        const Sop comp = net.node(id).func.complement();
        SparseSop sp;
        for (const Cube& c : comp.cubes()) {
          SparseCube sc;
          for (unsigned i = 0; i < c.num_vars(); ++i) {
            const Literal l = c.get(i);
            if (l == Literal::kAbsent) continue;
            sc.push_back(lit(net.node(id).fanins[i], l == Literal::kNeg));
          }
          std::sort(sc.begin(), sc.end());
          sp.cubes.push_back(std::move(sc));
        }
        sp.normalize();
        off = std::move(sp);
      }

      // Tentatively substitute into every consumer and measure literals.
      long long delta = -static_cast<long long>(own_lits);
      std::vector<std::pair<NodeId, SparseSop>> replacement;
      bool feasible = true;
      for (const NodeId m : consumers) {
        SparseSop fm = to_sparse(net, m);
        const std::size_t before = fm.literal_count();
        if (!substitute_signal(fm, id, on, off, opts.max_node_cubes)) {
          feasible = false;
          break;
        }
        delta += static_cast<long long>(fm.literal_count()) -
                 static_cast<long long>(before);
        replacement.emplace_back(m, std::move(fm));
      }
      if (!feasible || delta > opts.eliminate_threshold) continue;

      for (auto& [m, fm] : replacement) {
        set_from_sparse(net, m, fm);
        for (const NodeId s : net.node(m).fanins) {
          if (std::find(fanouts[s].begin(), fanouts[s].end(), m) ==
              fanouts[s].end()) {
            fanouts[s].push_back(m);
          }
        }
      }
      net.kill_node(id);
      ++collapsed;
      changed = true;
    }
    net.compact();
    if (!changed) break;
    is_po.assign(net.raw_size(), false);
    for (const auto& [name, driver] : net.outputs()) {
      if (driver != net::kNoNode) is_po[driver] = true;
    }
  }
  return collapsed;
}

std::size_t extract_divisors(Network& net, const SisOptions& opts) {
  std::size_t created = 0;
  for (unsigned pass = 0; pass < opts.extract_passes; ++pass) {
    struct Candidate {
      SparseSop divisor;
      std::vector<NodeId> users;
      long long value = 0;
    };
    std::map<std::string, Candidate> candidates;

    const auto order = net.topo_order();
    for (const NodeId id : order) {
      const SparseSop f = to_sparse(net, id);
      if (f.cubes.size() < 2) continue;
      // Kernel divisors.
      for (KernelPair& kp : all_kernels(f, opts.max_kernels)) {
        if (kp.kernel.cubes.size() < 2) continue;
        Candidate& c = candidates[kp.kernel.key()];
        if (c.divisor.cubes.empty()) c.divisor = kp.kernel;
        c.users.push_back(id);
      }
      // Single-cube divisors: pairwise common cubes within the node, plus
      // each multi-literal cube itself (shared cubes across nodes).
      const std::size_t limit = std::min<std::size_t>(f.cubes.size(), 24);
      for (std::size_t i = 0; i < limit; ++i) {
        if (f.cubes[i].size() >= 2) {
          SparseSop d;
          d.cubes.push_back(f.cubes[i]);
          Candidate& c = candidates[d.key()];
          if (c.divisor.cubes.empty()) c.divisor = d;
          c.users.push_back(id);
        }
        for (std::size_t j = i + 1; j < limit; ++j) {
          SparseCube cc = cube_intersect(f.cubes[i], f.cubes[j]);
          if (cc.size() < 2) continue;
          SparseSop d;
          d.cubes.push_back(std::move(cc));
          Candidate& c = candidates[d.key()];
          if (c.divisor.cubes.empty()) c.divisor = d;
          c.users.push_back(id);
        }
      }
    }

    // Value estimate, then greedy application with revalidation.
    std::vector<Candidate*> ranked;
    for (auto& [key, c] : candidates) {
      std::sort(c.users.begin(), c.users.end());
      c.users.erase(std::unique(c.users.begin(), c.users.end()),
                    c.users.end());
      // A divisor pays off through repeated use -- across nodes, or
      // several times inside one; the value accounting decides.
      long long value =
          -static_cast<long long>(c.divisor.literal_count());
      for (const NodeId u : c.users) {
        const SparseSop f = to_sparse(net, u);
        const auto [q, r] = divide(f, c.divisor);
        if (q.is_zero()) continue;
        value += static_cast<long long>(f.literal_count()) -
                 static_cast<long long>(q.literal_count() + q.cubes.size() +
                                        r.literal_count());
      }
      c.value = value;
      if (value > 0) ranked.push_back(&c);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Candidate* a, const Candidate* b) {
                return a->value > b->value;
              });

    std::size_t created_this_pass = 0;
    for (Candidate* c : ranked) {
      // Revalidate per user (earlier extractions may have changed them).
      std::vector<std::pair<NodeId, SparseSop>> rewrites;
      long long value = -static_cast<long long>(c->divisor.literal_count());
      for (const NodeId u : c->users) {
        const SparseSop f = to_sparse(net, u);
        const auto [q, r] = divide(f, c->divisor);
        if (q.is_zero()) continue;
        const long long saving =
            static_cast<long long>(f.literal_count()) -
            static_cast<long long>(q.literal_count() + q.cubes.size() +
                                   r.literal_count());
        if (saving <= 0) continue;
        value += saving;
        rewrites.emplace_back(u, SparseSop{});
      }
      if (value <= 0 || rewrites.empty()) continue;

      const NodeId nd = net.add_node(net.fresh_name("d"), {}, Sop(0));
      set_from_sparse(net, nd, c->divisor);
      for (auto& [u, unused] : rewrites) {
        const SparseSop f = to_sparse(net, u);
        const auto [q, r] = divide(f, c->divisor);
        SparseSop rebuilt = r;
        SparseCube tmp;
        for (const SparseCube& qc : q.cubes) {
          if (cube_product(qc, {lit(nd, false)}, tmp)) {
            rebuilt.cubes.push_back(tmp);
          }
        }
        rebuilt.normalize();
        set_from_sparse(net, u, rebuilt);
      }
      ++created;
      ++created_this_pass;
    }
    if (created_this_pass == 0) break;
  }
  net.compact();
  return created;
}

namespace {

/// True if `maybe_ancestor` is in the transitive fanin cone of `id`.
bool depends_on(const Network& net, NodeId id, NodeId maybe_ancestor) {
  std::vector<NodeId> stack{id};
  std::vector<bool> seen(net.raw_size(), false);
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    if (cur == maybe_ancestor) return true;
    if (seen[cur]) continue;
    seen[cur] = true;
    for (const NodeId fi : net.node(cur).fanins) stack.push_back(fi);
  }
  return false;
}

}  // namespace

std::size_t resubstitute(Network& net, const SisOptions& opts) {
  std::size_t substituted = 0;
  const auto order = net.topo_order();

  // signal -> nodes whose support contains it (divisor candidates).
  std::unordered_map<std::uint32_t, std::vector<NodeId>> by_signal;
  for (const NodeId id : order) {
    for (const NodeId fi : net.node(id).fanins) {
      by_signal[fi].push_back(id);
    }
  }

  for (const NodeId f_id : order) {
    const SparseSop f = to_sparse(net, f_id);
    if (f.cubes.size() < 2) continue;
    const auto f_support = f.support();
    if (f_support.empty()) continue;
    // Candidate divisors: nodes sharing f's first support signal, defined
    // earlier in topological order, with support contained in f's.
    const auto it = by_signal.find(f_support.front());
    if (it == by_signal.end()) continue;
    for (const NodeId g_id : it->second) {
      if (g_id == f_id || net.node(g_id).kind != net::NodeKind::kLogic) {
        continue;
      }
      const SparseSop g = to_sparse(net, g_id);
      if (g.cubes.size() < 2) continue;
      const auto g_support = g.support();
      if (!std::includes(f_support.begin(), f_support.end(),
                         g_support.begin(), g_support.end())) {
        continue;
      }
      const auto [q, r] = divide(f, g);
      if (q.is_zero()) continue;
      const long long saving =
          static_cast<long long>(f.literal_count()) -
          static_cast<long long>(q.literal_count() + q.cubes.size() +
                                 r.literal_count());
      if (saving <= 0) continue;
      // Acyclicity: g must not depend on f.
      if (depends_on(net, g_id, f_id)) continue;
      SparseSop rebuilt = r;
      SparseCube tmp;
      for (const SparseCube& qc : q.cubes) {
        if (cube_product(qc, {lit(g_id, false)}, tmp)) {
          rebuilt.cubes.push_back(tmp);
        }
      }
      rebuilt.normalize();
      set_from_sparse(net, f_id, rebuilt);
      ++substituted;
      break;  // one substitution per node per call
    }
  }
  (void)opts;
  return substituted;
}

void simplify_nodes(Network& net) {
  for (const NodeId id : net.topo_order()) {
    net.node(id).func.merge_adjacent();
    const Sop minimized =
        espresso_lite(net.node(id).func, Sop(net.node(id).func.num_vars()));
    if (minimized.literal_count() < net.node(id).func.literal_count()) {
      net.rewrite_node(id, net.node(id).fanins, minimized);
    }
  }
}

}  // namespace bds::sis
