#include "sis/factor.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>

namespace bds::sis {

std::size_t FactoredForm::literal_count() const {
  std::size_t n = 0;
  for (const FactorNode& fn : nodes) {
    if (fn.kind == FactorKind::kLit) ++n;
  }
  return n;
}

bool FactoredForm::eval(const std::vector<bool>& signal_values) const {
  const std::function<bool(std::int32_t)> go = [&](std::int32_t i) -> bool {
    const FactorNode& n = nodes[static_cast<std::size_t>(i)];
    switch (n.kind) {
      case FactorKind::kConst0:
        return false;
      case FactorKind::kConst1:
        return true;
      case FactorKind::kLit:
        return signal_values[lit_signal(n.literal)] != lit_negated(n.literal);
      case FactorKind::kAnd:
        return go(n.a) && go(n.b);
      case FactorKind::kOr:
        return go(n.a) || go(n.b);
    }
    return false;
  };
  return root >= 0 && go(root);
}

std::string FactoredForm::to_string(
    const std::vector<std::string>& signal_names) const {
  const auto name = [&](std::uint32_t s) {
    return s < signal_names.size() ? signal_names[s]
                                   : "s" + std::to_string(s);
  };
  const std::function<std::string(std::int32_t)> go =
      [&](std::int32_t i) -> std::string {
    const FactorNode& n = nodes[static_cast<std::size_t>(i)];
    switch (n.kind) {
      case FactorKind::kConst0:
        return "0";
      case FactorKind::kConst1:
        return "1";
      case FactorKind::kLit:
        return (lit_negated(n.literal) ? "!" : "") + name(lit_signal(n.literal));
      case FactorKind::kAnd:
        return "(" + go(n.a) + " " + go(n.b) + ")";
      case FactorKind::kOr:
        return "(" + go(n.a) + " + " + go(n.b) + ")";
    }
    return "?";
  };
  return root >= 0 ? go(root) : "0";
}

namespace {

class Builder {
 public:
  explicit Builder(FactoredForm& form) : form_(form) {}

  std::int32_t constant(bool v) {
    return push({v ? FactorKind::kConst1 : FactorKind::kConst0, 0, -1, -1});
  }
  std::int32_t literal(Lit l) { return push({FactorKind::kLit, l, -1, -1}); }
  std::int32_t and_(std::int32_t a, std::int32_t b) {
    return push({FactorKind::kAnd, 0, a, b});
  }
  std::int32_t or_(std::int32_t a, std::int32_t b) {
    return push({FactorKind::kOr, 0, a, b});
  }

  /// Balanced AND over a cube's literals.
  std::int32_t cube_tree(const SparseCube& c) {
    if (c.empty()) return constant(true);
    std::vector<std::int32_t> layer;
    layer.reserve(c.size());
    for (const Lit l : c) layer.push_back(literal(l));
    return reduce(layer, /*is_and=*/true);
  }

  std::int32_t reduce(std::vector<std::int32_t> layer, bool is_and) {
    while (layer.size() > 1) {
      std::vector<std::int32_t> next;
      for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
        next.push_back(is_and ? and_(layer[i], layer[i + 1])
                              : or_(layer[i], layer[i + 1]));
      }
      if (layer.size() % 2 == 1) next.push_back(layer.back());
      layer = std::move(next);
    }
    return layer[0];
  }

  std::int32_t factor_rec(SparseSop f) {
    f.normalize();
    if (f.cubes.empty()) return constant(false);
    if (f.has_const_cube()) return constant(true);
    if (f.cubes.size() == 1) return cube_tree(f.cubes[0]);

    // GOOD_FACTOR-style: pick the kernel divisor with the best literal
    // saving. (Skip the cover itself, which is always its own kernel.)
    const SparseSop* best_kernel = nullptr;
    long long best_saving = 0;
    std::pair<SparseSop, SparseSop> best_qr;
    const auto kernels = all_kernels(f, 64);
    for (const KernelPair& kp : kernels) {
      if (kp.kernel.cubes.size() < 2 ||
          kp.kernel.cubes.size() >= f.cubes.size()) {
        continue;
      }
      auto qr = divide(f, kp.kernel);
      if (qr.first.is_zero()) continue;
      const long long saving =
          static_cast<long long>(f.literal_count()) -
          static_cast<long long>(kp.kernel.literal_count() +
                                 qr.first.literal_count() +
                                 qr.second.literal_count());
      if (saving > best_saving) {
        best_saving = saving;
        best_kernel = &kp.kernel;
        best_qr = std::move(qr);
      }
    }
    if (best_kernel != nullptr) {
      const std::int32_t dq = and_(factor_rec(*best_kernel),
                                   factor_rec(std::move(best_qr.first)));
      if (best_qr.second.cubes.empty()) return dq;
      return or_(dq, factor_rec(std::move(best_qr.second)));
    }

    // No beneficial kernel: fall back to the most frequent literal.
    std::map<Lit, unsigned> counts;
    for (const SparseCube& c : f.cubes) {
      for (const Lit l : c) ++counts[l];
    }
    Lit best = 0;
    unsigned best_count = 1;
    for (const auto& [l, cnt] : counts) {
      if (cnt > best_count) {
        best = l;
        best_count = cnt;
      }
    }
    if (best_count < 2) {
      std::vector<std::int32_t> terms;
      terms.reserve(f.cubes.size());
      for (const SparseCube& c : f.cubes) terms.push_back(cube_tree(c));
      return reduce(std::move(terms), /*is_and=*/false);
    }

    // F = d * (Q / cc) + R where d = best literal extended by the common
    // cube cc of the quotient (pulling the whole co-kernel out).
    SparseSop q = divide_by_cube(f, {best});
    SparseSop r;
    for (const SparseCube& c : f.cubes) {
      if (!cube_contains(c, {best})) r.cubes.push_back(c);
    }
    SparseCube d{best};
    const SparseCube cc = common_cube(q);
    if (!cc.empty()) {
      SparseCube extended;
      cube_product(d, cc, extended);
      d = std::move(extended);
      for (SparseCube& c : q.cubes) c = cube_divide(c, cc);
    }
    const std::int32_t dq = and_(cube_tree(d), factor_rec(std::move(q)));
    if (r.cubes.empty()) return dq;
    return or_(dq, factor_rec(std::move(r)));
  }

 private:
  std::int32_t push(FactorNode n) {
    form_.nodes.push_back(n);
    return static_cast<std::int32_t>(form_.nodes.size() - 1);
  }
  FactoredForm& form_;
};

}  // namespace

FactoredForm factor(const SparseSop& f) {
  FactoredForm form;
  Builder b(form);
  form.root = b.factor_rec(f);
  return form;
}

}  // namespace bds::sis
