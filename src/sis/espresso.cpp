#include "sis/espresso.hpp"

#include <algorithm>

namespace bds::sis {

using sop::Cube;
using sop::Literal;
using sop::Sop;

bool is_tautology(const Sop& f) {
  if (f.has_full_cube()) return true;
  if (f.cubes().empty()) return false;
  // Unate shortcut: a cover unate in every variable is a tautology iff it
  // has the full cube (already checked).
  // Pick the most binate variable to branch on.
  const auto support = f.support();
  unsigned best_var = 0;
  unsigned best_binate = 0;
  bool found_binate = false;
  for (const unsigned v : support) {
    const unsigned pos = f.literal_occurrences(v, true);
    const unsigned neg = f.literal_occurrences(v, false);
    if (pos > 0 && neg > 0) {
      const unsigned score = pos + neg;
      if (!found_binate || score > best_binate) {
        best_binate = score;
        best_var = v;
        found_binate = true;
      }
    }
  }
  if (!found_binate) {
    // Unate cover without the full cube cannot be a tautology.
    return false;
  }
  return is_tautology(f.cofactor(best_var, true)) &&
         is_tautology(f.cofactor(best_var, false));
}

bool cube_covered(const Cube& c, const Sop& g) {
  // Cofactor g by the cube c, then test tautology.
  Sop cof(g.num_vars());
  for (const Cube& gc : g.cubes()) {
    if (gc.meet(c).is_empty()) continue;
    Cube reduced = gc;
    for (unsigned v = 0; v < c.num_vars(); ++v) {
      if (c.get(v) != Literal::kAbsent) reduced.set(v, Literal::kAbsent);
    }
    cof.add_cube(reduced);
  }
  return is_tautology(cof);
}

Sop espresso_lite(const Sop& on, const Sop& dc, const EspressoOptions& opts) {
  if (on.cubes().empty() || on.has_full_cube()) return on;
  if (on.support().size() > opts.max_support) return on;
  if (on.cube_count() > opts.max_cubes) return on;

  // Off-set R = !(on + dc).
  const Sop off = on.plus(dc).complement();
  if (off.cube_count() > opts.max_cubes) return on;
  if (off.cubes().empty()) return Sop::constant(on.num_vars(), true);

  Sop f = on;
  f.minimize_scc();
  for (unsigned iter = 0; iter < opts.iterations; ++iter) {
    // ---- EXPAND: raise each literal that keeps the cube off-set-free ----
    bool changed = false;
    std::vector<Cube> expanded;
    for (Cube c : f.cubes()) {
      for (unsigned v = 0; v < c.num_vars(); ++v) {
        if (c.get(v) == Literal::kAbsent) continue;
        Cube trial = c;
        trial.set(v, Literal::kAbsent);
        bool hits_off = false;
        for (const Cube& r : off.cubes()) {
          if (!trial.meet(r).is_empty()) {
            hits_off = true;
            break;
          }
        }
        if (!hits_off) {
          changed = changed || !(trial == c);
          c = trial;
        }
      }
      expanded.push_back(std::move(c));
    }
    f = Sop(on.num_vars(), std::move(expanded));
    f.minimize_scc();

    // ---- IRREDUNDANT: drop cubes covered by the rest plus don't cares ----
    // Largest cubes are kept preferentially (process smallest first).
    std::vector<Cube> cubes = f.cubes();
    std::sort(cubes.begin(), cubes.end(), [](const Cube& a, const Cube& b) {
      return a.literal_count() > b.literal_count();
    });
    std::vector<bool> keep(cubes.size(), true);
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      Sop rest(on.num_vars());
      for (std::size_t j = 0; j < cubes.size(); ++j) {
        if (j != i && keep[j]) rest.add_cube(cubes[j]);
      }
      for (const Cube& d : dc.cubes()) rest.add_cube(d);
      if (cube_covered(cubes[i], rest)) {
        keep[i] = false;
        changed = true;
      }
    }
    Sop pruned(on.num_vars());
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      if (keep[i]) pruned.add_cube(cubes[i]);
    }
    f = std::move(pruned);
    if (!changed) break;
  }
  // Never return a worse cover.
  if (f.literal_count() > on.literal_count()) return on;
  return f;
}

}  // namespace bds::sis
