// Two-level minimization (espresso-lite): the EXPAND / IRREDUNDANT loop of
// espresso against an explicitly computed off-set, with optional don't
// cares. This is the workhorse of the baseline's `simplify` and
// `full_simplify` steps -- and, as in the original SIS, a major share of
// its runtime.
#pragma once

#include "sop/sop.hpp"

namespace bds::sis {

struct EspressoOptions {
  /// Skip functions with more variables than this (complement blowup guard).
  unsigned max_support = 14;
  /// Skip if the on-set or computed off-set exceeds this many cubes.
  std::size_t max_cubes = 512;
  /// EXPAND/IRREDUNDANT iterations.
  unsigned iterations = 2;
};

/// Recursive unate-paradigm tautology check.
bool is_tautology(const sop::Sop& f);

/// True if cube `c` is covered by cover `g` (tautology of the cofactor).
bool cube_covered(const sop::Cube& c, const sop::Sop& g);

/// Minimizes `on` using `dc` as don't care. Returns a cover G with
/// on <= G <= on + dc; falls back to `on` unchanged when limits trip.
sop::Sop espresso_lite(const sop::Sop& on, const sop::Sop& dc,
                       const EspressoOptions& opts = {});

}  // namespace bds::sis
