// Subject graphs: the canonical NAND2/INV form of a Boolean network that
// tree covering operates on. Node SOPs are algebraically factored first
// (leaf-DAG form, so XOR/XNOR/MUX shapes remain matchable as library
// patterns); structurally identical subject nodes are hash-consed, and
// multi-fanout points become tree boundaries.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"

namespace bds::map {

struct SubjectGraph {
  enum class Kind : std::uint8_t { kInput, kInv, kNand, kConst0, kConst1 };

  struct Node {
    Kind kind = Kind::kInput;
    std::int32_t a = -1;
    std::int32_t b = -1;
    net::NodeId source = net::kNoNode;  ///< for kInput: the network PI/node
    std::uint32_t fanout = 0;
  };

  std::vector<Node> nodes;  ///< indices are topological (children first)
  /// Subject node computing each network signal (PIs and logic nodes).
  std::vector<std::int32_t> of_network;
  /// Subject node per primary output, in network output order.
  std::vector<std::int32_t> po_nodes;

  std::int32_t mk_input(net::NodeId source);
  std::int32_t mk_const(bool value);
  std::int32_t mk_inv(std::int32_t a);
  std::int32_t mk_nand(std::int32_t a, std::int32_t b);
  std::int32_t mk_and(std::int32_t a, std::int32_t b) {
    return mk_inv(mk_nand(a, b));
  }
  std::int32_t mk_or(std::int32_t a, std::int32_t b) {
    return mk_nand(mk_inv(a), mk_inv(b));
  }

  /// Recomputes fanout counts from PO-reachable references.
  void count_fanouts();

 private:
  std::unordered_map<std::uint64_t, std::int32_t> cons_;
};

/// Builds the subject graph of a network: every node's local SOP is
/// factored and expanded into NAND2/INV form.
SubjectGraph build_subject_graph(const net::Network& net);

}  // namespace bds::map
