// Subject graphs: the canonical NAND2/INV form of a Boolean network that
// tree covering operates on. Node SOPs are algebraically factored first
// (leaf-DAG form, so XOR/XNOR/MUX shapes remain matchable as library
// patterns); structurally identical subject nodes are hash-consed, and
// multi-fanout points become tree boundaries.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"

namespace bds::map {

/// The canonical NAND2/INV form of a network (see file comment); both the
/// gate mapper and the LUT mapper cover this graph.
struct SubjectGraph {
  /// Subject node kinds: graph leaves (inputs/constants) and the two
  /// canonical operators.
  enum class Kind : std::uint8_t { kInput, kInv, kNand, kConst0, kConst1 };

  /// One subject node; `a`/`b` are indices into `nodes`.
  struct Node {
    Kind kind = Kind::kInput;  ///< leaf or operator kind
    std::int32_t a = -1;       ///< first fanin (kInv/kNand), else -1
    std::int32_t b = -1;       ///< second fanin (kNand), else -1
    net::NodeId source = net::kNoNode;  ///< for kInput: the network PI/node
    std::uint32_t fanout = 0;  ///< PO-reachable references (tree boundaries)
  };

  std::vector<Node> nodes;  ///< indices are topological (children first)
  /// Subject node computing each network signal (PIs and logic nodes).
  std::vector<std::int32_t> of_network;
  /// Subject node per primary output, in network output order.
  std::vector<std::int32_t> po_nodes;

  /// Creates (or reuses) the leaf node of network signal `source`.
  std::int32_t mk_input(net::NodeId source);
  /// The constant-0 or constant-1 leaf.
  std::int32_t mk_const(bool value);
  /// Hash-consed inverter of `a` (double inversion cancels).
  std::int32_t mk_inv(std::int32_t a);
  /// Hash-consed NAND2 of `a` and `b` (operands are order-normalized).
  std::int32_t mk_nand(std::int32_t a, std::int32_t b);
  /// AND as INV(NAND(a, b)) -- the canonical expansion.
  std::int32_t mk_and(std::int32_t a, std::int32_t b) {
    return mk_inv(mk_nand(a, b));
  }
  /// OR as NAND(INV(a), INV(b)) -- the canonical expansion.
  std::int32_t mk_or(std::int32_t a, std::int32_t b) {
    return mk_nand(mk_inv(a), mk_inv(b));
  }

  /// Recomputes fanout counts from PO-reachable references.
  void count_fanouts();

 private:
  std::unordered_map<std::uint64_t, std::int32_t> cons_;
};

/// Builds the subject graph of a network: every node's local SOP is
/// factored and expanded into NAND2/INV form.
SubjectGraph build_subject_graph(const net::Network& net);

}  // namespace bds::map
