#include "map/mapper.hpp"

#include <cassert>
#include <ostream>
#include <functional>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bds::map {

using net::Network;
using net::NodeId;

namespace {

/// A library gate as a NAND2/INV pattern tree (leaves are formal pins).
struct Pattern {
  enum class Kind : std::uint8_t { kLeaf, kInv, kNand };
  struct Node {
    Kind kind = Kind::kLeaf;
    std::int32_t a = -1;
    std::int32_t b = -1;
    std::uint32_t pin = 0;  ///< for kLeaf
  };
  const Gate* gate = nullptr;
  std::vector<Node> nodes;
  std::int32_t root = -1;
  std::uint32_t num_pins = 0;
};

/// Converts a gate's expression into its NAND2/INV pattern (one canonical
/// decomposition per gate, as classic tree mappers do).
Pattern gate_pattern(const Gate& g) {
  Pattern p;
  p.gate = &g;
  p.num_pins = static_cast<std::uint32_t>(g.pins.size());
  const auto push = [&](Pattern::Node n) {
    p.nodes.push_back(n);
    return static_cast<std::int32_t>(p.nodes.size() - 1);
  };
  const auto mk_inv = [&](std::int32_t a) {
    if (p.nodes[static_cast<std::size_t>(a)].kind == Pattern::Kind::kInv) {
      return p.nodes[static_cast<std::size_t>(a)].a;
    }
    return push({Pattern::Kind::kInv, a, -1, 0});
  };
  const std::function<std::int32_t(std::int32_t)> go =
      [&](std::int32_t ei) -> std::int32_t {
    const Expr& e = g.expr[static_cast<std::size_t>(ei)];
    switch (e.kind) {
      case Expr::Kind::kConst0:
      case Expr::Kind::kConst1:
        return -1;  // constant gates are not used as patterns
      case Expr::Kind::kVar: {
        std::uint32_t pin = 0;
        for (; pin < g.pins.size(); ++pin) {
          if (g.pins[pin] == e.pin) break;
        }
        return push({Pattern::Kind::kLeaf, -1, -1, pin});
      }
      case Expr::Kind::kNot: {
        const std::int32_t a = go(e.a);
        return a < 0 ? -1 : mk_inv(a);
      }
      case Expr::Kind::kAnd: {
        const std::int32_t a = go(e.a);
        const std::int32_t b = go(e.b);
        if (a < 0 || b < 0) return -1;
        return mk_inv(push({Pattern::Kind::kNand, a, b, 0}));
      }
      case Expr::Kind::kOr: {
        const std::int32_t a = go(e.a);
        const std::int32_t b = go(e.b);
        if (a < 0 || b < 0) return -1;
        return push({Pattern::Kind::kNand, mk_inv(a), mk_inv(b), 0});
      }
    }
    return -1;
  };
  p.root = go(g.expr_root);
  return p;
}

class Mapper {
 public:
  Mapper(const Network& net, const Library& lib, MapObjective objective)
      : net_(net), lib_(lib), objective_(objective) {
    for (const Gate& g : lib.gates) {
      Pattern p = gate_pattern(g);
      if (p.root >= 0) patterns_.push_back(std::move(p));
    }
    if (lib.inverter() == nullptr || lib.nand2() == nullptr) {
      throw std::runtime_error(
          "library must contain an inverter and a 2-input NAND");
    }
  }

  MapResult run() {
    graph_ = build_subject_graph(net_);
    const std::size_t n = graph_.nodes.size();
    best_gate_.assign(n, nullptr);
    best_leaves_.assign(n, {});
    cost_.assign(n, 0.0);
    arrival_.assign(n, 0.0);

    for (std::size_t i = 0; i < n; ++i) cover(static_cast<std::int32_t>(i));
    return emit();
  }

 private:
  bool is_tree_leaf(std::int32_t s) const {
    const auto& sn = graph_.nodes[static_cast<std::size_t>(s)];
    return sn.kind == SubjectGraph::Kind::kInput ||
           sn.kind == SubjectGraph::Kind::kConst0 ||
           sn.kind == SubjectGraph::Kind::kConst1 || sn.fanout > 1;
  }

  /// Matches pattern node `p` at subject node `s`; pattern-internal nodes
  /// must be fanout-free in the subject (classic tree covering).
  bool match(std::int32_t s, const Pattern& pat, std::int32_t p,
             std::vector<std::int32_t>& bind, bool is_root) const {
    const Pattern::Node& pn = pat.nodes[static_cast<std::size_t>(p)];
    if (pn.kind == Pattern::Kind::kLeaf) {
      std::int32_t& slot = bind[pn.pin];
      if (slot == -1) {
        slot = s;
        return true;
      }
      return slot == s;
    }
    const auto& sn = graph_.nodes[static_cast<std::size_t>(s)];
    if (!is_root && is_tree_leaf(s)) return false;
    if (pn.kind == Pattern::Kind::kInv) {
      if (sn.kind != SubjectGraph::Kind::kInv) return false;
      return match(sn.a, pat, pn.a, bind, false);
    }
    if (sn.kind != SubjectGraph::Kind::kNand) return false;
    // Try both operand orders with backtracking.
    std::vector<std::int32_t> saved = bind;
    if (match(sn.a, pat, pn.a, bind, false) &&
        match(sn.b, pat, pn.b, bind, false)) {
      return true;
    }
    bind = saved;
    if (match(sn.b, pat, pn.a, bind, false) &&
        match(sn.a, pat, pn.b, bind, false)) {
      return true;
    }
    bind = saved;
    return false;
  }

  void cover(std::int32_t s) {
    const auto& sn = graph_.nodes[static_cast<std::size_t>(s)];
    if (sn.kind == SubjectGraph::Kind::kInput ||
        sn.kind == SubjectGraph::Kind::kConst0 ||
        sn.kind == SubjectGraph::Kind::kConst1) {
      cost_[static_cast<std::size_t>(s)] = 0.0;
      arrival_[static_cast<std::size_t>(s)] = 0.0;
      return;
    }
    double best = std::numeric_limits<double>::infinity();
    double best_arrival = 0.0;
    for (const Pattern& pat : patterns_) {
      std::vector<std::int32_t> bind(pat.num_pins, -1);
      if (!match(s, pat, pat.root, bind, true)) continue;
      double c = pat.gate->area;
      double arr = 0.0;
      bool ok = true;
      for (const std::int32_t leaf : bind) {
        if (leaf == -1) {  // unused pin: cannot instantiate
          ok = false;
          break;
        }
        if (!is_tree_leaf(leaf)) c += cost_[static_cast<std::size_t>(leaf)];
        arr = std::max(arr, arrival_[static_cast<std::size_t>(leaf)]);
      }
      if (!ok) continue;
      arr += pat.gate->delay;
      const bool better =
          objective_ == MapObjective::kArea
              ? (c < best || (c == best && arr < best_arrival))
              : (best_gate_[static_cast<std::size_t>(s)] == nullptr ||
                 arr < best_arrival || (arr == best_arrival && c < best));
      if (better) {
        best = c;
        best_arrival = arr;
        best_gate_[static_cast<std::size_t>(s)] = &pat;
        best_leaves_[static_cast<std::size_t>(s)] = bind;
      }
    }
    if (!std::isfinite(best)) {
      throw std::runtime_error("unmappable subject node (library too small)");
    }
    cost_[static_cast<std::size_t>(s)] = best;
    arrival_[static_cast<std::size_t>(s)] = best_arrival;
  }

  MapResult emit() {
    MapResult result;
    result.netlist.set_name(net_.name() + "_mapped");
    std::vector<NodeId> emitted(graph_.nodes.size(), net::kNoNode);

    for (const NodeId pi : net_.inputs()) {
      const std::int32_t s = graph_.of_network[pi];
      emitted[static_cast<std::size_t>(s)] =
          result.netlist.add_input(net_.node(pi).name);
    }

    const std::function<NodeId(std::int32_t)> build =
        [&](std::int32_t s) -> NodeId {
      NodeId& memo = emitted[static_cast<std::size_t>(s)];
      if (memo != net::kNoNode) return memo;
      const auto& sn = graph_.nodes[static_cast<std::size_t>(s)];
      if (sn.kind == SubjectGraph::Kind::kConst0 ||
          sn.kind == SubjectGraph::Kind::kConst1) {
        memo = result.netlist.add_node(
            result.netlist.fresh_name("k"), {},
            sop::Sop::constant(0, sn.kind == SubjectGraph::Kind::kConst1));
        result.area += 0.0;
        return memo;
      }
      const Pattern* pat = best_gate_[static_cast<std::size_t>(s)];
      assert(pat != nullptr);
      std::vector<NodeId> fanins;
      for (const std::int32_t leaf : best_leaves_[static_cast<std::size_t>(s)]) {
        fanins.push_back(build(leaf));
      }
      memo = result.netlist.add_node(
          result.netlist.fresh_name(pat->gate->name + "_"), std::move(fanins),
          pat->gate->function());
      result.area += pat->gate->area;
      ++result.num_gates;
      ++result.gate_histogram[pat->gate->name];
      result.instance_gate.emplace(memo, pat->gate);
      return memo;
    };

    for (std::size_t o = 0; o < net_.outputs().size(); ++o) {
      const std::int32_t s = graph_.po_nodes[o];
      if (s < 0) continue;
      const NodeId driver = build(s);
      result.netlist.set_output(net_.outputs()[o].first, driver);
      result.delay = std::max(result.delay,
                              arrival_[static_cast<std::size_t>(s)]);
    }
    return result;
  }

  const Network& net_;
  const Library& lib_;
  MapObjective objective_;
  std::vector<Pattern> patterns_;
  SubjectGraph graph_;
  std::vector<const Pattern*> best_gate_;
  std::vector<std::vector<std::int32_t>> best_leaves_;
  std::vector<double> cost_;
  std::vector<double> arrival_;
};

}  // namespace

MapResult map_network(const Network& net, const Library& lib,
                      MapObjective objective) {
  Mapper m(net, lib, objective);
  return m.run();
}

void write_gate_blif(std::ostream& os, const MapResult& result) {
  const Network& net = result.netlist;
  os << ".model " << net.name() << '\n';
  os << ".inputs";
  for (const NodeId id : net.inputs()) os << ' ' << net.node(id).name;
  os << '\n';
  os << ".outputs";
  for (const auto& [name, driver] : net.outputs()) os << ' ' << name;
  os << '\n';
  for (const NodeId id : net.topo_order()) {
    const net::Node& n = net.node(id);
    const auto it = result.instance_gate.find(id);
    if (it == result.instance_gate.end()) {
      // Constant node: plain .names form.
      os << ".names " << n.name << '\n';
      if (!n.func.is_constant_zero()) os << "1\n";
      continue;
    }
    const Gate& g = *it->second;
    os << ".gate " << g.name;
    for (std::size_t i = 0; i < g.pins.size(); ++i) {
      os << ' ' << g.pins[i] << '=' << net.node(n.fanins[i]).name;
    }
    os << ' ' << g.output << '=' << n.name << '\n';
  }
  for (const auto& [name, driver] : net.outputs()) {
    if (driver != net::kNoNode && net.node(driver).name != name) {
      os << ".names " << net.node(driver).name << ' ' << name << "\n1 1\n";
    }
  }
  os << ".end\n";
}

}  // namespace bds::map
