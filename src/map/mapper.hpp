// Area-oriented tree covering onto a gate library (the SIS tree mapper of
// the experiments). Library gates are pre-decomposed into NAND2/INV
// pattern trees; dynamic programming over the subject graph picks the
// cheapest cover per tree, with multi-fanout nodes as tree boundaries.
// Delay is reported from per-gate block delays over the chosen cover.
#pragma once

#include <map>
#include <string>

#include "map/genlib.hpp"
#include "map/subject.hpp"
#include "net/network.hpp"

namespace bds::map {

/// Cover-selection objective: minimal area (the paper's experiments) or
/// minimal arrival time with area as the tie-breaker.
enum class MapObjective : std::uint8_t { kArea, kDelay };

/// Outcome of map_network(): the gate-level netlist plus the mapped
/// area/delay figures every reporting surface (the `map` pass counters,
/// -stats, bench_suite) reads.
struct MapResult {
  net::Network netlist;  ///< gate-level network (one node per instance)
  double area = 0.0;     ///< total area of the chosen cover
  double delay = 0.0;  ///< critical path through gate block delays
  std::size_t num_gates = 0;  ///< gate instances in the cover
  /// Instances per library gate name (for histograms in reports).
  std::map<std::string, std::size_t> gate_histogram;
  /// Library gate of each instance node (keyed by netlist NodeId); nodes
  /// absent here are constants.
  std::map<net::NodeId, const Gate*> instance_gate;
};

/// Writes the mapped netlist in BLIF ".gate" form (as SIS write_blif does
/// for mapped networks): one `.gate <name> <pin>=<signal> ... <out>=<sig>`
/// line per instance.
void write_gate_blif(std::ostream& os, const MapResult& result);

/// Maps `net` onto `lib`. The returned netlist is functionally equivalent
/// to the input (each instance node carries the gate's SOP), so the result
/// can be verified with the usual equivalence checks.
MapResult map_network(const net::Network& net,
                      const Library& lib = mcnc_like_library(),
                      MapObjective objective = MapObjective::kArea);

}  // namespace bds::map
