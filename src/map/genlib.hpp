// Gate library support: a genlib-subset parser and the embedded MCNC-like
// library both flows are mapped onto. The original experiments used
// mcnc.genlib; we ship a library with the same gate families (inverter,
// NAND/NOR in several widths, AND/OR, AOI/OAI, XOR/XNOR, MUX) and
// lambda^2-scale areas / ns-scale pin delays (see DESIGN.md §4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sop/sop.hpp"

namespace bds::map {

/// Boolean expression AST for gate functions (as written in genlib).
struct Expr {
  enum class Kind : std::uint8_t { kConst0, kConst1, kVar, kNot, kAnd, kOr };
  Kind kind = Kind::kConst0;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::string pin;  ///< for kVar
};

struct Gate {
  std::string name;
  double area = 0.0;
  std::string output;
  std::vector<Expr> expr;       ///< AST arena; root is expr_root
  std::int32_t expr_root = -1;
  std::vector<std::string> pins;  ///< formal input pins, in first-use order
  double delay = 0.0;             ///< block delay (worst pin, rise/fall max)

  /// Gate function as an SOP over pin indices.
  sop::Sop function() const;
};

struct Library {
  std::string name;
  std::vector<Gate> gates;

  const Gate* find(const std::string& gate_name) const;
  /// Smallest inverter and smallest 2-input NAND (used as mapper anchors).
  const Gate* inverter() const;
  const Gate* nand2() const;
};

/// Parses a genlib-subset description:
///   GATE <name> <area> <out>=<expr>;  [PIN <name|*> <phase> <in_load>
///     <max_load> <rise_block> <rise_fanout> <fall_block> <fall_fanout>]*
/// Throws std::runtime_error on malformed input.
Library parse_genlib(const std::string& text);

/// The embedded MCNC-like library (see header comment).
const Library& mcnc_like_library();

}  // namespace bds::map
