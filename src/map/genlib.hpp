// Gate library support: a genlib-subset parser and the embedded MCNC-like
// library both flows are mapped onto. The original experiments used
// mcnc.genlib; we ship a library with the same gate families (inverter,
// NAND/NOR in several widths, AND/OR, AOI/OAI, XOR/XNOR, MUX) and
// lambda^2-scale areas / ns-scale pin delays (see DESIGN.md §4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sop/sop.hpp"

namespace bds::map {

/// Boolean expression AST node for gate functions (as written in genlib).
/// Nodes live in the owning Gate's `expr` arena; `a`/`b` are arena indices.
struct Expr {
  /// Operator (or leaf) of this AST node.
  enum class Kind : std::uint8_t { kConst0, kConst1, kVar, kNot, kAnd, kOr };
  Kind kind = Kind::kConst0;  ///< node operator/leaf kind
  std::int32_t a = -1;        ///< first operand (kNot/kAnd/kOr), else -1
  std::int32_t b = -1;        ///< second operand (kAnd/kOr), else -1
  std::string pin;            ///< referenced input pin, for kVar
};

/// One library gate: a named cell with an area, a single-output Boolean
/// function over formal pins, and a block delay taken as the worst
/// rise/fall block delay over its PIN lines.
struct Gate {
  std::string name;     ///< cell name (the `.gate` instance keyword)
  double area = 0.0;    ///< area cost used by the covering DP
  std::string output;   ///< formal output name (left of `=` in genlib)
  std::vector<Expr> expr;       ///< AST arena; root is expr_root
  std::int32_t expr_root = -1;  ///< index of the root Expr in `expr`
  std::vector<std::string> pins;  ///< formal input pins, in first-use order
  double delay = 0.0;             ///< block delay (worst pin, rise/fall max)

  /// Gate function as an SOP over pin indices.
  sop::Sop function() const;
};

/// A parsed gate library: the target of the `map` pass and the tree
/// mapper (map/mapper.hpp).
struct Library {
  std::string name;         ///< library name, for reports
  std::vector<Gate> gates;  ///< all gates, in declaration order

  /// The gate named `gate_name`, or nullptr if the library has none.
  const Gate* find(const std::string& gate_name) const;
  /// Smallest inverter and smallest 2-input NAND (used as mapper anchors).
  const Gate* inverter() const;
  /// See inverter().
  const Gate* nand2() const;
};

/// Parses a genlib-subset description:
///   GATE <name> <area> <out>=<expr>;  [PIN <name|*> <phase> <in_load>
///     <max_load> <rise_block> <rise_fanout> <fall_block> <fall_fanout>]*
/// Throws bds::ParseError on malformed input, with a two-part diagnostic
/// in the BLIF parser's style -- `genlib line N: <what>` -- naming the
/// offending gate: bad GATE headers, a gate name already defined (the
/// message names both lines), malformed expressions, malformed PIN lines,
/// and PIN phases other than INV/NONINV/UNKNOWN are all rejected.
Library parse_genlib(const std::string& text);

/// The embedded MCNC-like library (see header comment); also available to
/// every surface by the library spec "mcnc" (opt/map_passes.hpp).
const Library& mcnc_like_library();

}  // namespace bds::map
