#include "map/subject.hpp"

#include <cassert>
#include <functional>

#include "sis/factor.hpp"

namespace bds::map {

using net::Network;
using net::NodeId;

std::int32_t SubjectGraph::mk_input(NodeId source) {
  Node n;
  n.kind = Kind::kInput;
  n.source = source;
  nodes.push_back(n);
  return static_cast<std::int32_t>(nodes.size() - 1);
}

std::int32_t SubjectGraph::mk_const(bool value) {
  const std::uint64_t key = value ? 2 : 1;
  const auto it = cons_.find(key);
  if (it != cons_.end()) return it->second;
  Node n;
  n.kind = value ? Kind::kConst1 : Kind::kConst0;
  nodes.push_back(n);
  const auto idx = static_cast<std::int32_t>(nodes.size() - 1);
  cons_.emplace(key, idx);
  return idx;
}

std::int32_t SubjectGraph::mk_inv(std::int32_t a) {
  // Involution and constant folding.
  if (nodes[static_cast<std::size_t>(a)].kind == Kind::kInv) {
    return nodes[static_cast<std::size_t>(a)].a;
  }
  if (nodes[static_cast<std::size_t>(a)].kind == Kind::kConst0) {
    return mk_const(true);
  }
  if (nodes[static_cast<std::size_t>(a)].kind == Kind::kConst1) {
    return mk_const(false);
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(a) << 34) | (1ULL << 33);
  const auto it = cons_.find(key);
  if (it != cons_.end()) return it->second;
  Node n;
  n.kind = Kind::kInv;
  n.a = a;
  nodes.push_back(n);
  const auto idx = static_cast<std::int32_t>(nodes.size() - 1);
  cons_.emplace(key, idx);
  return idx;
}

std::int32_t SubjectGraph::mk_nand(std::int32_t a, std::int32_t b) {
  if (a > b) std::swap(a, b);
  const Kind ka = nodes[static_cast<std::size_t>(a)].kind;
  const Kind kb = nodes[static_cast<std::size_t>(b)].kind;
  if (ka == Kind::kConst0 || kb == Kind::kConst0) return mk_const(true);
  if (ka == Kind::kConst1) return mk_inv(b);
  if (kb == Kind::kConst1) return mk_inv(a);
  if (a == b) return mk_inv(a);
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 34) |
                            (static_cast<std::uint64_t>(b) << 3) | 0x4;
  const auto it = cons_.find(key);
  if (it != cons_.end()) return it->second;
  Node n;
  n.kind = Kind::kNand;
  n.a = a;
  n.b = b;
  nodes.push_back(n);
  const auto idx = static_cast<std::int32_t>(nodes.size() - 1);
  cons_.emplace(key, idx);
  return idx;
}

void SubjectGraph::count_fanouts() {
  for (Node& n : nodes) n.fanout = 0;
  // References from internal edges.
  std::vector<bool> reach(nodes.size(), false);
  std::vector<std::int32_t> stack(po_nodes.begin(), po_nodes.end());
  while (!stack.empty()) {
    const std::int32_t i = stack.back();
    stack.pop_back();
    if (i < 0 || reach[static_cast<std::size_t>(i)]) continue;
    reach[static_cast<std::size_t>(i)] = true;
    const Node& n = nodes[static_cast<std::size_t>(i)];
    if (n.a >= 0) stack.push_back(n.a);
    if (n.b >= 0) stack.push_back(n.b);
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!reach[i]) continue;
    const Node& n = nodes[i];
    if (n.a >= 0) ++nodes[static_cast<std::size_t>(n.a)].fanout;
    if (n.b >= 0) ++nodes[static_cast<std::size_t>(n.b)].fanout;
  }
  // Primary outputs count as references too.
  for (const std::int32_t po : po_nodes) {
    if (po >= 0) ++nodes[static_cast<std::size_t>(po)].fanout;
  }
}

SubjectGraph build_subject_graph(const Network& net) {
  SubjectGraph g;
  g.of_network.assign(net.raw_size(), -1);

  for (const NodeId pi : net.inputs()) {
    g.of_network[pi] = g.mk_input(pi);
  }

  for (const NodeId id : net.topo_order()) {
    const net::Node& n = net.node(id);
    if (n.func.is_constant_zero()) {
      g.of_network[id] = g.mk_const(false);
      continue;
    }
    if (n.func.has_full_cube()) {
      g.of_network[id] = g.mk_const(true);
      continue;
    }
    // Factor the local cover (signals = fanin positions), then expand the
    // factored tree into NAND2/INV.
    sis::SparseSop sparse;
    for (const sop::Cube& c : n.func.cubes()) {
      sis::SparseCube sc;
      for (unsigned i = 0; i < c.num_vars(); ++i) {
        const sop::Literal l = c.get(i);
        if (l == sop::Literal::kAbsent) continue;
        sc.push_back(sis::lit(i, l == sop::Literal::kNeg));
      }
      std::sort(sc.begin(), sc.end());
      sparse.cubes.push_back(std::move(sc));
    }
    sparse.normalize();
    const sis::FactoredForm form = sis::factor(sparse);

    const std::function<std::int32_t(std::int32_t)> expand =
        [&](std::int32_t fi) -> std::int32_t {
      const sis::FactorNode& fn = form.nodes[static_cast<std::size_t>(fi)];
      switch (fn.kind) {
        case sis::FactorKind::kConst0:
          return g.mk_const(false);
        case sis::FactorKind::kConst1:
          return g.mk_const(true);
        case sis::FactorKind::kLit: {
          const unsigned pos = sis::lit_signal(fn.literal);
          const std::int32_t base = g.of_network[n.fanins[pos]];
          assert(base >= 0);
          return sis::lit_negated(fn.literal) ? g.mk_inv(base) : base;
        }
        case sis::FactorKind::kAnd:
          return g.mk_and(expand(fn.a), expand(fn.b));
        case sis::FactorKind::kOr:
          return g.mk_or(expand(fn.a), expand(fn.b));
      }
      return -1;
    };
    g.of_network[id] = expand(form.root);
  }

  for (const auto& [name, driver] : net.outputs()) {
    g.po_nodes.push_back(driver == net::kNoNode ? -1
                                                : g.of_network[driver]);
  }
  g.count_fanouts();
  return g;
}

}  // namespace bds::map
