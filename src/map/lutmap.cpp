#include "map/lutmap.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "map/subject.hpp"

namespace bds::map {

using net::Network;
using net::NodeId;

namespace {

/// Skips inverter chains: inverters are absorbed into cones, never leaves.
std::int32_t strip_inv(const SubjectGraph& g, std::int32_t s) {
  while (g.nodes[static_cast<std::size_t>(s)].kind == SubjectGraph::Kind::kInv) {
    s = g.nodes[static_cast<std::size_t>(s)].a;
  }
  return s;
}

/// Evaluates the cone rooted at `s` under an assignment of its leaves.
bool eval_cone(const SubjectGraph& g, std::int32_t s,
               const std::unordered_map<std::int32_t, bool>& leaf_value) {
  const auto it = leaf_value.find(s);
  if (it != leaf_value.end()) return it->second;
  const SubjectGraph::Node& n = g.nodes[static_cast<std::size_t>(s)];
  switch (n.kind) {
    case SubjectGraph::Kind::kConst0:
      return false;
    case SubjectGraph::Kind::kConst1:
      return true;
    case SubjectGraph::Kind::kInput:
      throw std::logic_error("unbound input inside LUT cone");
    case SubjectGraph::Kind::kInv:
      return !eval_cone(g, n.a, leaf_value);
    case SubjectGraph::Kind::kNand:
      return !(eval_cone(g, n.a, leaf_value) && eval_cone(g, n.b, leaf_value));
  }
  return false;
}

}  // namespace

LutMapResult map_luts(const Network& net, unsigned k) {
  if (k < 2 || k > 6) {
    throw std::invalid_argument("map_luts: k must be in [2, 6]");
  }
  const SubjectGraph g = build_subject_graph(net);
  const std::size_t n = g.nodes.size();

  // Greedy cone growth: cut[s] = leaf set (inverter-stripped subject ids).
  std::vector<std::vector<std::int32_t>> cut(n);
  std::vector<unsigned> level(n, 0);
  const auto merge_within_k = [&](const std::vector<std::int32_t>& a,
                                  const std::vector<std::int32_t>& b,
                                  std::vector<std::int32_t>& out) {
    out = a;
    for (const std::int32_t x : b) {
      if (std::find(out.begin(), out.end(), x) == out.end()) {
        out.push_back(x);
        if (out.size() > k) return false;
      }
    }
    return true;
  };

  for (std::size_t i = 0; i < n; ++i) {
    const SubjectGraph::Node& node = g.nodes[i];
    const auto s = static_cast<std::int32_t>(i);
    switch (node.kind) {
      case SubjectGraph::Kind::kInput:
      case SubjectGraph::Kind::kConst0:
      case SubjectGraph::Kind::kConst1:
        cut[i] = {s};
        level[i] = 0;
        break;
      case SubjectGraph::Kind::kInv:
        cut[i] = cut[static_cast<std::size_t>(node.a)];
        level[i] = level[static_cast<std::size_t>(node.a)];
        break;
      case SubjectGraph::Kind::kNand: {
        std::vector<std::int32_t> merged;
        if (merge_within_k(cut[static_cast<std::size_t>(node.a)],
                           cut[static_cast<std::size_t>(node.b)], merged)) {
          cut[i] = std::move(merged);
          level[i] = std::max(level[static_cast<std::size_t>(node.a)],
                              level[static_cast<std::size_t>(node.b)]);
        } else {
          // Fanins become LUT roots; this node starts a fresh cone.
          const std::int32_t la = strip_inv(g, node.a);
          const std::int32_t lb = strip_inv(g, node.b);
          cut[i] = {la};
          if (lb != la) cut[i].push_back(lb);
          level[i] = 1 + std::max(level[static_cast<std::size_t>(node.a)],
                                  level[static_cast<std::size_t>(node.b)]);
        }
        break;
      }
    }
  }

  // LUT roots: PO cones plus every cut leaf reachable from them.
  std::vector<bool> is_root(n, false);
  std::vector<std::int32_t> stack;
  for (const std::int32_t po : g.po_nodes) {
    if (po >= 0) stack.push_back(strip_inv(g, po));
  }
  while (!stack.empty()) {
    const std::int32_t s = stack.back();
    stack.pop_back();
    const SubjectGraph::Node& node = g.nodes[static_cast<std::size_t>(s)];
    if (node.kind == SubjectGraph::Kind::kInput ||
        node.kind == SubjectGraph::Kind::kConst0 ||
        node.kind == SubjectGraph::Kind::kConst1) {
      continue;
    }
    if (is_root[static_cast<std::size_t>(s)]) continue;
    is_root[static_cast<std::size_t>(s)] = true;
    for (const std::int32_t leaf : cut[static_cast<std::size_t>(s)]) {
      stack.push_back(leaf);
    }
  }

  // Emit the LUT netlist.
  LutMapResult result;
  result.netlist.set_name(net.name() + "_luts");
  std::vector<NodeId> emitted(n, net::kNoNode);
  for (const NodeId pi : net.inputs()) {
    const std::int32_t s = g.of_network[pi];
    emitted[static_cast<std::size_t>(s)] =
        result.netlist.add_input(net.node(pi).name);
  }

  const std::function<NodeId(std::int32_t)> build =
      [&](std::int32_t s) -> NodeId {
    NodeId& memo = emitted[static_cast<std::size_t>(s)];
    if (memo != net::kNoNode) return memo;
    const SubjectGraph::Node& node = g.nodes[static_cast<std::size_t>(s)];
    if (node.kind == SubjectGraph::Kind::kConst0 ||
        node.kind == SubjectGraph::Kind::kConst1) {
      memo = result.netlist.add_node(
          result.netlist.fresh_name("k"), {},
          sop::Sop::constant(0, node.kind == SubjectGraph::Kind::kConst1));
      return memo;
    }
    const std::vector<std::int32_t>& leaves =
        cut[static_cast<std::size_t>(s)];
    std::vector<NodeId> fanins;
    fanins.reserve(leaves.size());
    for (const std::int32_t leaf : leaves) fanins.push_back(build(leaf));
    // Extract the cone's truth table over its leaves.
    const unsigned width = static_cast<unsigned>(leaves.size());
    sop::Sop func(width);
    std::unordered_map<std::int32_t, bool> leaf_value;
    for (unsigned row = 0; row < (1u << width); ++row) {
      for (unsigned j = 0; j < width; ++j) {
        leaf_value[leaves[j]] = ((row >> j) & 1) != 0;
      }
      if (!eval_cone(g, s, leaf_value)) continue;
      sop::Cube c(width);
      for (unsigned j = 0; j < width; ++j) {
        c.set(j, ((row >> j) & 1) != 0 ? sop::Literal::kPos
                                       : sop::Literal::kNeg);
      }
      func.add_cube(c);
    }
    func.merge_adjacent();
    memo = result.netlist.add_node(result.netlist.fresh_name("lut"),
                                   std::move(fanins), std::move(func));
    ++result.num_luts;
    return memo;
  };

  for (std::size_t o = 0; o < net.outputs().size(); ++o) {
    const std::int32_t po = g.po_nodes[o];
    if (po < 0) continue;
    // The PO cone includes any trailing inverters, so root at the PO node
    // itself (inverters were stripped only for *shared* roots).
    const std::int32_t root = strip_inv(g, po);
    NodeId driver = build(root);
    if (root != po) {
      // Odd number of stripped inverters flips the output: add a 1-LUT.
      bool flipped = false;
      for (std::int32_t walk = po;
           g.nodes[static_cast<std::size_t>(walk)].kind ==
           SubjectGraph::Kind::kInv;
           walk = g.nodes[static_cast<std::size_t>(walk)].a) {
        flipped = !flipped;
      }
      if (flipped) {
        sop::Sop inv(1);
        inv.add_cube(sop::Cube::parse("0"));
        driver = result.netlist.add_node(result.netlist.fresh_name("lut"),
                                         {driver}, std::move(inv));
        ++result.num_luts;
      }
    }
    result.netlist.set_output(net.outputs()[o].first, driver);
    result.depth = std::max(
        result.depth, level[static_cast<std::size_t>(root)] +
                          (g.nodes[static_cast<std::size_t>(root)].kind ==
                                   SubjectGraph::Kind::kNand
                               ? 1u
                               : 0u));
  }
  return result;
}

}  // namespace bds::map
