// K-LUT technology mapping for FPGAs -- the paper's future-work item 4
// ("Recently, we found that BDS is also amenable to FPGA synthesis...
// over 30% improvement in the LUT count" [35]).
//
// Greedy k-feasible cone covering over the NAND2/INV subject graph: each
// node absorbs its fanins' cones while the leaf set stays within k;
// otherwise the fanins become LUT roots. Each root's cone function is
// extracted by exhaustive cone evaluation (k <= 6) into an SOP node of the
// emitted LUT netlist, so results remain formally verifiable.
#pragma once

#include <cstddef>

#include "net/network.hpp"

namespace bds::map {

/// Outcome of map_luts(): the LUT netlist plus the count/depth figures the
/// `lutmap` pass reports as counters.
struct LutMapResult {
  net::Network netlist;  ///< one node per LUT (SOP over <= k fanins)
  std::size_t num_luts = 0;  ///< LUTs in the cover
  unsigned depth = 0;  ///< LUT levels on the longest PI-to-PO path
};

/// Maps `net` onto k-input LUTs (2 <= k <= 6). The returned netlist is
/// functionally equivalent to the input (each LUT node carries its cone's
/// SOP), so the result stays verifiable with the usual equivalence checks.
LutMapResult map_luts(const net::Network& net, unsigned k = 4);

}  // namespace bds::map
