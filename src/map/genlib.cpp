#include "map/genlib.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace bds::map {

namespace {

/// Recursive-descent parser for genlib gate expressions:
///   expr := term ('+' term)* ; term := factor ('*'? factor)* ;
///   factor := '!' factor | '(' expr ')' | ident | CONST0 | CONST1
/// Juxtaposition denotes AND, as genlib allows.
class ExprParser {
 public:
  ExprParser(const std::string& text, Gate& gate)
      : text_(text), gate_(gate) {}

  std::int32_t parse() {
    const std::int32_t root = parse_or();
    skip_ws();
    if (pos_ != text_.size()) {
      throw std::runtime_error("genlib: trailing junk in expression '" +
                               text_ + "'");
    }
    return root;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool peek_factor_start() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    return c == '!' || c == '(' || std::isalnum(static_cast<unsigned char>(c)) != 0 ||
           c == '_' || c == '[' || c == ']';
  }

  std::int32_t push(Expr e) {
    gate_.expr.push_back(std::move(e));
    return static_cast<std::int32_t>(gate_.expr.size() - 1);
  }

  std::int32_t parse_or() {
    std::int32_t left = parse_and();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '+') {
        ++pos_;
        const std::int32_t right = parse_and();
        left = push({Expr::Kind::kOr, left, right, ""});
      } else {
        return left;
      }
    }
  }

  std::int32_t parse_and() {
    std::int32_t left = parse_factor();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '*') {
        ++pos_;
        const std::int32_t right = parse_factor();
        left = push({Expr::Kind::kAnd, left, right, ""});
      } else if (peek_factor_start()) {
        const std::int32_t right = parse_factor();
        left = push({Expr::Kind::kAnd, left, right, ""});
      } else {
        return left;
      }
    }
  }

  std::int32_t parse_factor() {
    skip_ws();
    if (pos_ >= text_.size()) {
      throw std::runtime_error("genlib: unexpected end of expression");
    }
    const char c = text_[pos_];
    if (c == '!') {
      ++pos_;
      const std::int32_t a = parse_factor();
      return push({Expr::Kind::kNot, a, -1, ""});
    }
    if (c == '(') {
      ++pos_;
      const std::int32_t e = parse_or();
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        throw std::runtime_error("genlib: missing ')'");
      }
      ++pos_;
      // Postfix ' (complement), another genlib convention.
      if (pos_ < text_.size() && text_[pos_] == '\'') {
        ++pos_;
        return push({Expr::Kind::kNot, e, -1, ""});
      }
      return e;
    }
    std::string name;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_' || text_[pos_] == '[' || text_[pos_] == ']')) {
      name += text_[pos_++];
    }
    if (name.empty()) {
      throw std::runtime_error(std::string("genlib: bad character '") + c +
                               "' in expression");
    }
    if (name == "CONST0") return push({Expr::Kind::kConst0, -1, -1, ""});
    if (name == "CONST1") return push({Expr::Kind::kConst1, -1, -1, ""});
    if (pos_ < text_.size() && text_[pos_] == '\'') {
      ++pos_;
      const std::int32_t v = var(name);
      return push({Expr::Kind::kNot, v, -1, ""});
    }
    return var(name);
  }

  std::int32_t var(const std::string& name) {
    if (std::find(gate_.pins.begin(), gate_.pins.end(), name) ==
        gate_.pins.end()) {
      gate_.pins.push_back(name);
    }
    return push({Expr::Kind::kVar, -1, -1, name});
  }

  const std::string& text_;
  Gate& gate_;
  std::size_t pos_ = 0;
};

sop::Sop expr_to_sop(const Gate& g, std::int32_t idx) {
  const Expr& e = g.expr[static_cast<std::size_t>(idx)];
  const unsigned nv = static_cast<unsigned>(g.pins.size());
  switch (e.kind) {
    case Expr::Kind::kConst0:
      return sop::Sop::constant(nv, false);
    case Expr::Kind::kConst1:
      return sop::Sop::constant(nv, true);
    case Expr::Kind::kVar: {
      const auto it = std::find(g.pins.begin(), g.pins.end(), e.pin);
      return sop::Sop::literal(
          nv, static_cast<unsigned>(it - g.pins.begin()), true);
    }
    case Expr::Kind::kNot:
      return expr_to_sop(g, e.a).complement();
    case Expr::Kind::kAnd:
      return expr_to_sop(g, e.a).times(expr_to_sop(g, e.b));
    case Expr::Kind::kOr:
      return expr_to_sop(g, e.a).plus(expr_to_sop(g, e.b));
  }
  return sop::Sop(nv);
}

}  // namespace

sop::Sop Gate::function() const {
  sop::Sop f = expr_to_sop(*this, expr_root);
  f.minimize_scc();
  return f;
}

const Gate* Library::find(const std::string& gate_name) const {
  for (const Gate& g : gates) {
    if (g.name == gate_name) return &g;
  }
  return nullptr;
}

const Gate* Library::inverter() const {
  const Gate* best = nullptr;
  for (const Gate& g : gates) {
    if (g.pins.size() != 1) continue;
    const sop::Sop f = g.function();
    if (f.cube_count() == 1 && f.cubes()[0].get(0) == sop::Literal::kNeg) {
      if (best == nullptr || g.area < best->area) best = &g;
    }
  }
  return best;
}

const Gate* Library::nand2() const {
  const Gate* best = nullptr;
  for (const Gate& g : gates) {
    if (g.pins.size() != 2) continue;
    // Semantic check: covers of the same function can differ structurally.
    const sop::Sop f = g.function();
    const bool is_nand = f.eval({false, false}) && f.eval({false, true}) &&
                         f.eval({true, false}) && !f.eval({true, true});
    if (is_nand && (best == nullptr || g.area < best->area)) best = &g;
  }
  return best;
}

Library parse_genlib(const std::string& text) {
  Library lib;
  std::istringstream is(text);
  std::string line;
  std::string pending;
  std::vector<std::string> statements;
  while (std::getline(is, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    pending += ' ';
    pending += line;
  }
  // Split on "GATE" keywords.
  std::size_t pos = 0;
  while ((pos = pending.find("GATE", pos)) != std::string::npos) {
    const std::size_t next = pending.find("GATE", pos + 4);
    statements.push_back(pending.substr(
        pos, next == std::string::npos ? std::string::npos : next - pos));
    pos = next;
    if (pos == std::string::npos) break;
  }

  for (const std::string& stmt : statements) {
    std::istringstream ss(stmt);
    std::string kw;
    Gate g;
    ss >> kw >> g.name >> g.area;
    if (!ss) throw std::runtime_error("genlib: bad GATE header: " + stmt);
    // Function up to ';'.
    std::string func;
    std::getline(ss, func, ';');
    const std::size_t eq = func.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("genlib: missing '=' in " + stmt);
    }
    g.output = func.substr(0, eq);
    g.output.erase(std::remove_if(g.output.begin(), g.output.end(),
                                  [](char c) {
                                    return std::isspace(
                                               static_cast<unsigned char>(
                                                   c)) != 0;
                                  }),
                   g.output.end());
    const std::string body = func.substr(eq + 1);
    ExprParser parser(body, g);
    g.expr_root = parser.parse();

    // PIN lines: take the worst block delay over pins.
    std::string tok;
    while (ss >> tok) {
      if (tok != "PIN") continue;
      std::string pin_name, phase;
      double in_load = 0, max_load = 0, rb = 0, rf = 0, fb = 0, ff = 0;
      ss >> pin_name >> phase >> in_load >> max_load >> rb >> rf >> fb >> ff;
      g.delay = std::max({g.delay, rb, fb});
      (void)rf;
      (void)ff;
    }
    if (g.delay == 0.0) g.delay = 1.0;
    lib.gates.push_back(std::move(g));
  }
  if (lib.gates.empty()) throw std::runtime_error("genlib: no gates found");
  return lib;
}

const Library& mcnc_like_library() {
  static const Library lib = [] {
    Library l = parse_genlib(R"(
# MCNC-like library: same gate families as mcnc.genlib, lambda^2-scale
# areas and ns-scale block delays.
GATE inv1   8  O=!a;              PIN * INV 1 999 0.20 0.02 0.20 0.02
GATE nand2  16 O=!(a*b);          PIN * INV 1 999 0.35 0.04 0.35 0.04
GATE nand3  24 O=!(a*b*c);        PIN * INV 1 999 0.45 0.05 0.45 0.05
GATE nand4  32 O=!(a*b*c*d);      PIN * INV 1 999 0.55 0.06 0.55 0.06
GATE nor2   16 O=!(a+b);          PIN * INV 1 999 0.40 0.05 0.40 0.05
GATE nor3   24 O=!(a+b+c);        PIN * INV 1 999 0.55 0.06 0.55 0.06
GATE nor4   32 O=!(a+b+c+d);      PIN * INV 1 999 0.70 0.07 0.70 0.07
GATE and2   24 O=a*b;             PIN * NONINV 1 999 0.50 0.04 0.50 0.04
GATE or2    24 O=a+b;             PIN * NONINV 1 999 0.55 0.05 0.55 0.05
GATE aoi21  24 O=!(a*b+c);        PIN * INV 1 999 0.50 0.05 0.50 0.05
GATE aoi22  32 O=!(a*b+c*d);      PIN * INV 1 999 0.60 0.06 0.60 0.06
GATE oai21  24 O=!((a+b)*c);      PIN * INV 1 999 0.50 0.05 0.50 0.05
GATE oai22  32 O=!((a+b)*(c+d));  PIN * INV 1 999 0.60 0.06 0.60 0.06
GATE xor2   40 O=a*!b+!a*b;       PIN * UNKNOWN 1 999 0.70 0.07 0.70 0.07
GATE xnor2  40 O=a*b+!a*!b;       PIN * UNKNOWN 1 999 0.70 0.07 0.70 0.07
GATE mux21  40 O=s*a+!s*b;        PIN * UNKNOWN 1 999 0.65 0.07 0.65 0.07
GATE zero   0  O=CONST0;
GATE one    0  O=CONST1;
)");
    l.name = "mcnc_like";
    return l;
  }();
  return lib;
}

}  // namespace bds::map
