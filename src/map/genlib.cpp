#include "map/genlib.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "util/error.hpp"

namespace bds::map {

namespace {

/// Recursive-descent parser for genlib gate expressions:
///   expr := term ('+' term)* ; term := factor ('*'? factor)* ;
///   factor := '!' factor | '(' expr ')' | ident | CONST0 | CONST1
/// Juxtaposition denotes AND, as genlib allows.
class ExprParser {
 public:
  ExprParser(const std::string& text, Gate& gate)
      : text_(text), gate_(gate) {}

  std::int32_t parse() {
    const std::int32_t root = parse_or();
    skip_ws();
    if (pos_ != text_.size()) {
      throw std::runtime_error("trailing junk in expression '" + text_ + "'");
    }
    return root;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool peek_factor_start() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    return c == '!' || c == '(' || std::isalnum(static_cast<unsigned char>(c)) != 0 ||
           c == '_' || c == '[' || c == ']';
  }

  std::int32_t push(Expr e) {
    gate_.expr.push_back(std::move(e));
    return static_cast<std::int32_t>(gate_.expr.size() - 1);
  }

  std::int32_t parse_or() {
    std::int32_t left = parse_and();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '+') {
        ++pos_;
        const std::int32_t right = parse_and();
        left = push({Expr::Kind::kOr, left, right, ""});
      } else {
        return left;
      }
    }
  }

  std::int32_t parse_and() {
    std::int32_t left = parse_factor();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '*') {
        ++pos_;
        const std::int32_t right = parse_factor();
        left = push({Expr::Kind::kAnd, left, right, ""});
      } else if (peek_factor_start()) {
        const std::int32_t right = parse_factor();
        left = push({Expr::Kind::kAnd, left, right, ""});
      } else {
        return left;
      }
    }
  }

  std::int32_t parse_factor() {
    skip_ws();
    if (pos_ >= text_.size()) {
      throw std::runtime_error("unexpected end of expression");
    }
    const char c = text_[pos_];
    if (c == '!') {
      ++pos_;
      const std::int32_t a = parse_factor();
      return push({Expr::Kind::kNot, a, -1, ""});
    }
    if (c == '(') {
      ++pos_;
      const std::int32_t e = parse_or();
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        throw std::runtime_error("missing ')' in expression");
      }
      ++pos_;
      // Postfix ' (complement), another genlib convention.
      if (pos_ < text_.size() && text_[pos_] == '\'') {
        ++pos_;
        return push({Expr::Kind::kNot, e, -1, ""});
      }
      return e;
    }
    std::string name;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_' || text_[pos_] == '[' || text_[pos_] == ']')) {
      name += text_[pos_++];
    }
    if (name.empty()) {
      throw std::runtime_error(std::string("bad character '") + c +
                               "' in expression");
    }
    if (name == "CONST0") return push({Expr::Kind::kConst0, -1, -1, ""});
    if (name == "CONST1") return push({Expr::Kind::kConst1, -1, -1, ""});
    if (pos_ < text_.size() && text_[pos_] == '\'') {
      ++pos_;
      const std::int32_t v = var(name);
      return push({Expr::Kind::kNot, v, -1, ""});
    }
    return var(name);
  }

  std::int32_t var(const std::string& name) {
    if (std::find(gate_.pins.begin(), gate_.pins.end(), name) ==
        gate_.pins.end()) {
      gate_.pins.push_back(name);
    }
    return push({Expr::Kind::kVar, -1, -1, name});
  }

  const std::string& text_;
  Gate& gate_;
  std::size_t pos_ = 0;
};

sop::Sop expr_to_sop(const Gate& g, std::int32_t idx) {
  const Expr& e = g.expr[static_cast<std::size_t>(idx)];
  const unsigned nv = static_cast<unsigned>(g.pins.size());
  switch (e.kind) {
    case Expr::Kind::kConst0:
      return sop::Sop::constant(nv, false);
    case Expr::Kind::kConst1:
      return sop::Sop::constant(nv, true);
    case Expr::Kind::kVar: {
      const auto it = std::find(g.pins.begin(), g.pins.end(), e.pin);
      return sop::Sop::literal(
          nv, static_cast<unsigned>(it - g.pins.begin()), true);
    }
    case Expr::Kind::kNot:
      return expr_to_sop(g, e.a).complement();
    case Expr::Kind::kAnd:
      return expr_to_sop(g, e.a).times(expr_to_sop(g, e.b));
    case Expr::Kind::kOr:
      return expr_to_sop(g, e.a).plus(expr_to_sop(g, e.b));
  }
  return sop::Sop(nv);
}

}  // namespace

sop::Sop Gate::function() const {
  sop::Sop f = expr_to_sop(*this, expr_root);
  f.minimize_scc();
  return f;
}

const Gate* Library::find(const std::string& gate_name) const {
  for (const Gate& g : gates) {
    if (g.name == gate_name) return &g;
  }
  return nullptr;
}

const Gate* Library::inverter() const {
  const Gate* best = nullptr;
  for (const Gate& g : gates) {
    if (g.pins.size() != 1) continue;
    const sop::Sop f = g.function();
    if (f.cube_count() == 1 && f.cubes()[0].get(0) == sop::Literal::kNeg) {
      if (best == nullptr || g.area < best->area) best = &g;
    }
  }
  return best;
}

const Gate* Library::nand2() const {
  const Gate* best = nullptr;
  for (const Gate& g : gates) {
    if (g.pins.size() != 2) continue;
    // Semantic check: covers of the same function can differ structurally.
    const sop::Sop f = g.function();
    const bool is_nand = f.eval({false, false}) && f.eval({false, true}) &&
                         f.eval({true, false}) && !f.eval({true, true});
    if (is_nand && (best == nullptr || g.area < best->area)) best = &g;
  }
  return best;
}

Library parse_genlib(const std::string& text) {
  Library lib;
  // A GATE statement may wrap across lines (its PIN lines usually do), so
  // statements are gathered first, each remembering the 1-based line its
  // GATE keyword appeared on -- every diagnostic below is anchored to
  // that line, the same "<format> line N: <what>" shape the BLIF parser
  // uses.
  struct Statement {
    std::size_t line = 0;
    std::string text;
  };
  std::vector<Statement> statements;
  {
    std::istringstream is(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
      ++lineno;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::size_t pos = 0;
      while (pos < line.size()) {
        const std::size_t next = line.find("GATE", pos);
        const std::string chunk =
            line.substr(pos, next == std::string::npos ? std::string::npos
                                                       : next - pos);
        // Text before the first GATE keyword of the file (a non-comment
        // preamble) has nothing to attach to and is ignored, as before;
        // otherwise the chunk continues the open statement.
        if (!statements.empty() && !chunk.empty()) {
          statements.back().text += ' ';
          statements.back().text += chunk;
        }
        if (next == std::string::npos) break;
        statements.push_back(Statement{lineno, "GATE"});
        pos = next + 4;
      }
    }
  }

  // Gate name -> defining line, for the duplicate diagnostic.
  std::vector<std::pair<std::string, std::size_t>> defined;
  for (const Statement& stmt : statements) {
    const auto fail = [&stmt](const std::string& msg) -> void {
      throw ParseError("genlib line " + std::to_string(stmt.line) + ": " +
                       msg);
    };
    std::istringstream ss(stmt.text);
    std::string kw;
    Gate g;
    ss >> kw >> g.name >> g.area;
    if (!ss) {
      fail("bad GATE header (expected 'GATE <name> <area> <out>=<expr>;'): " +
           stmt.text);
    }
    for (const auto& [name, line] : defined) {
      if (name == g.name) {
        fail("gate '" + g.name + "' already defined at line " +
             std::to_string(line));
      }
    }
    defined.emplace_back(g.name, stmt.line);
    // Function up to ';'.
    std::string func;
    std::getline(ss, func, ';');
    if (ss.eof()) {
      fail("gate '" + g.name + "': missing ';' after the gate function");
    }
    const std::size_t eq = func.find('=');
    if (eq == std::string::npos) {
      fail("gate '" + g.name + "': missing '=' in function '" + func + "'");
    }
    g.output = func.substr(0, eq);
    g.output.erase(std::remove_if(g.output.begin(), g.output.end(),
                                  [](char c) {
                                    return std::isspace(
                                               static_cast<unsigned char>(
                                                   c)) != 0;
                                  }),
                   g.output.end());
    const std::string body = func.substr(eq + 1);
    try {
      ExprParser parser(body, g);
      g.expr_root = parser.parse();
    } catch (const std::runtime_error& e) {
      fail("gate '" + g.name + "': " + e.what());
    }

    // PIN lines: take the worst block delay over pins.
    std::string tok;
    while (ss >> tok) {
      if (tok != "PIN") {
        fail("gate '" + g.name + "': expected PIN, got '" + tok + "'");
      }
      std::string pin_name, phase;
      double in_load = 0, max_load = 0, rb = 0, rf = 0, fb = 0, ff = 0;
      ss >> pin_name >> phase >> in_load >> max_load >> rb >> rf >> fb >> ff;
      if (!ss) {
        fail("gate '" + g.name + "': bad PIN line (expected 'PIN <pin|*> "
             "<phase> <in_load> <max_load> <rise_block> <rise_fanout> "
             "<fall_block> <fall_fanout>')");
      }
      if (phase != "INV" && phase != "NONINV" && phase != "UNKNOWN") {
        fail("gate '" + g.name + "': PIN " + pin_name + ": bad phase '" +
             phase + "' (expected INV, NONINV or UNKNOWN)");
      }
      if (pin_name != "*" &&
          std::find(g.pins.begin(), g.pins.end(), pin_name) ==
              g.pins.end()) {
        fail("gate '" + g.name + "': PIN names unknown pin '" + pin_name +
             "'");
      }
      g.delay = std::max({g.delay, rb, fb});
      (void)rf;
      (void)ff;
    }
    if (g.delay == 0.0) g.delay = 1.0;
    lib.gates.push_back(std::move(g));
  }
  if (lib.gates.empty()) {
    throw ParseError("genlib: no GATE definitions found");
  }
  return lib;
}

const Library& mcnc_like_library() {
  static const Library lib = [] {
    Library l = parse_genlib(R"(
# MCNC-like library: same gate families as mcnc.genlib, lambda^2-scale
# areas and ns-scale block delays.
GATE inv1   8  O=!a;              PIN * INV 1 999 0.20 0.02 0.20 0.02
GATE nand2  16 O=!(a*b);          PIN * INV 1 999 0.35 0.04 0.35 0.04
GATE nand3  24 O=!(a*b*c);        PIN * INV 1 999 0.45 0.05 0.45 0.05
GATE nand4  32 O=!(a*b*c*d);      PIN * INV 1 999 0.55 0.06 0.55 0.06
GATE nor2   16 O=!(a+b);          PIN * INV 1 999 0.40 0.05 0.40 0.05
GATE nor3   24 O=!(a+b+c);        PIN * INV 1 999 0.55 0.06 0.55 0.06
GATE nor4   32 O=!(a+b+c+d);      PIN * INV 1 999 0.70 0.07 0.70 0.07
GATE and2   24 O=a*b;             PIN * NONINV 1 999 0.50 0.04 0.50 0.04
GATE or2    24 O=a+b;             PIN * NONINV 1 999 0.55 0.05 0.55 0.05
GATE aoi21  24 O=!(a*b+c);        PIN * INV 1 999 0.50 0.05 0.50 0.05
GATE aoi22  32 O=!(a*b+c*d);      PIN * INV 1 999 0.60 0.06 0.60 0.06
GATE oai21  24 O=!((a+b)*c);      PIN * INV 1 999 0.50 0.05 0.50 0.05
GATE oai22  32 O=!((a+b)*(c+d));  PIN * INV 1 999 0.60 0.06 0.60 0.06
GATE xor2   40 O=a*!b+!a*b;       PIN * UNKNOWN 1 999 0.70 0.07 0.70 0.07
GATE xnor2  40 O=a*b+!a*!b;       PIN * UNKNOWN 1 999 0.70 0.07 0.70 0.07
GATE mux21  40 O=s*a+!s*b;        PIN * UNKNOWN 1 999 0.65 0.07 0.65 0.07
GATE zero   0  O=CONST0;
GATE one    0  O=CONST1;
)");
    l.name = "mcnc_like";
    return l;
  }();
  return lib;
}

}  // namespace bds::map
