#include "verify/cec.hpp"

#include <algorithm>
#include <unordered_map>

#include "bdd/bdd.hpp"
#include "util/error.hpp"

namespace bds::verify {

using bdd::Bdd;
using bdd::Manager;
using net::Network;
using net::NodeId;

namespace {

/// Builds global BDDs for all outputs of a network, with PI variables
/// assigned through `pi_var` (keyed by PI name).
std::unordered_map<std::string, Bdd> global_bdds(
    const Network& net, Manager& mgr,
    const std::unordered_map<std::string, bdd::Var>& pi_var,
    std::size_t max_live_nodes, std::size_t& reorder_at) {
  std::vector<Bdd> value(net.raw_size());
  for (const NodeId pi : net.inputs()) {
    value[pi] = mgr.var(pi_var.at(net.node(pi).name));
  }
  for (const NodeId id : net.topo_order()) {
    const net::Node& n = net.node(id);
    Bdd f = mgr.zero();
    for (const sop::Cube& c : n.func.cubes()) {
      Bdd term = mgr.one();
      for (unsigned i = 0; i < c.num_vars(); ++i) {
        const sop::Literal l = c.get(i);
        if (l == sop::Literal::kAbsent) continue;
        const Bdd& in = value[n.fanins[i]];
        term = term & (l == sop::Literal::kPos ? in : !in);
      }
      f = f | term;
    }
    value[id] = f;
    // Dynamic reordering under pressure keeps datapath circuits
    // (rotators, selectors) verifiable. Re-sift whenever the table grows
    // well past the previous post-sift size; sifting while small is cheap.
    if (mgr.live_nodes() > reorder_at) {
      mgr.reorder_sift();
      reorder_at = std::max(reorder_at, mgr.live_nodes() * 4);
    }
    if (mgr.live_nodes() > max_live_nodes) {
      throw BudgetExceeded(BudgetExceeded::Resource::kNodes,
                           "global BDD budget exceeded: " +
                               std::to_string(mgr.live_nodes()) + " > " +
                               std::to_string(max_live_nodes) +
                               " live nodes");
    }
  }
  std::unordered_map<std::string, Bdd> outputs;
  for (const auto& [name, driver] : net.outputs()) {
    outputs.emplace(name, driver == net::kNoNode ? mgr.zero() : value[driver]);
  }
  return outputs;
}

/// Extracts one satisfying assignment of a nonzero function.
std::vector<bool> witness(const Manager& mgr, bdd::Edge e,
                          std::uint32_t nvars) {
  std::vector<bool> a(nvars, false);
  bool phase = e.complemented();
  std::uint32_t idx = e.node();
  while (idx != 0) {
    // Follow a branch that can still reach 1 (in the current phase).
    const bdd::Edge hi = mgr.node_hi(idx) ^ phase;
    const bdd::Edge lo = mgr.node_lo(idx) ^ phase;
    const bdd::Var v = mgr.node_var(idx);
    // Prefer the hi branch unless it is constant 0.
    const bdd::Edge next = hi.is_zero() ? lo : hi;
    a[v] = !hi.is_zero();
    phase = next.complemented();
    idx = next.node();
  }
  return a;
}

}  // namespace

CecResult check_equivalence(
    const Network& a, const Network& b, std::size_t max_live_nodes,
    std::shared_ptr<const util::ResourceBudget> budget) {
  CecResult result;
  // Input/output name sets must match.
  if (a.num_inputs() != b.num_inputs() ||
      a.num_outputs() != b.num_outputs()) {
    result.status = CecStatus::kInequivalent;
    result.failing_output = "<interface mismatch>";
    return result;
  }

  Manager mgr;
  // A caller-supplied budget makes the verifier's own BDD work governable:
  // its node/byte ceilings and deadline surface as kAborted below, never as
  // an escaping exception.
  mgr.set_budget(std::move(budget));
  std::unordered_map<std::string, bdd::Var> pi_var;
  for (const NodeId pi : a.inputs()) {
    pi_var.emplace(a.node(pi).name, mgr.new_var());
  }
  for (const NodeId pi : b.inputs()) {
    if (!pi_var.contains(b.node(pi).name)) {
      result.status = CecStatus::kInequivalent;
      result.failing_output = "<input name mismatch: " + b.node(pi).name + ">";
      return result;
    }
  }

  try {
    std::size_t reorder_at =
        std::min<std::size_t>(20'000, max_live_nodes / 8);
    const auto fa = global_bdds(a, mgr, pi_var, max_live_nodes, reorder_at);
    const auto fb = global_bdds(b, mgr, pi_var, max_live_nodes, reorder_at);
    for (const auto& [name, func_a] : fa) {
      const auto it = fb.find(name);
      if (it == fb.end()) {
        result.status = CecStatus::kInequivalent;
        result.failing_output = "<output name mismatch: " + name + ">";
        return result;
      }
      if (!(func_a == it->second)) {
        result.status = CecStatus::kInequivalent;
        result.failing_output = name;
        const Bdd diff = func_a ^ it->second;
        const std::vector<bool> w =
            witness(mgr, diff.edge(), mgr.num_vars());
        // Reorder the witness into a's input order.
        result.counterexample.reserve(a.num_inputs());
        for (const NodeId pi : a.inputs()) {
          result.counterexample.push_back(w[pi_var.at(a.node(pi).name)]);
        }
        return result;
      }
    }
  } catch (const BudgetExceeded& e) {
    // Cancellation propagates; everything else degrades to kAborted (the
    // caller's cue to fall back to random simulation).
    if (e.resource() == BudgetExceeded::Resource::kCancelled) throw;
    result.status = CecStatus::kAborted;
    return result;
  }
  result.status = CecStatus::kEquivalent;
  return result;
}

}  // namespace bds::verify
