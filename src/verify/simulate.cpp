// 64-way bit-parallel random simulation: each signal carries a 64-bit word,
// one simulation pattern per bit. Used to cross-check optimized networks
// when global BDDs are infeasible (e.g. large multipliers, as with the
// paper's C6288).
#include "verify/cec.hpp"

#include <cassert>

#include "util/rng.hpp"

namespace bds::verify {

using net::Network;
using net::NodeId;

std::vector<std::uint64_t> simulate64(
    const Network& net, const std::vector<std::uint64_t>& pi_words) {
  assert(pi_words.size() == net.num_inputs());
  std::vector<std::uint64_t> value(net.raw_size(), 0);
  for (std::size_t i = 0; i < net.inputs().size(); ++i) {
    value[net.inputs()[i]] = pi_words[i];
  }
  for (const NodeId id : net.topo_order()) {
    const net::Node& n = net.node(id);
    std::uint64_t f = 0;
    for (const sop::Cube& c : n.func.cubes()) {
      std::uint64_t term = ~0ULL;
      for (unsigned i = 0; i < c.num_vars(); ++i) {
        switch (c.get(i)) {
          case sop::Literal::kPos:
            term &= value[n.fanins[i]];
            break;
          case sop::Literal::kNeg:
            term &= ~value[n.fanins[i]];
            break;
          case sop::Literal::kEmpty:
            term = 0;
            break;
          case sop::Literal::kAbsent:
            break;
        }
      }
      f |= term;
    }
    value[id] = f;
  }
  std::vector<std::uint64_t> po;
  po.reserve(net.outputs().size());
  for (const auto& [name, driver] : net.outputs()) {
    po.push_back(driver == net::kNoNode ? 0 : value[driver]);
  }
  return po;
}

bool random_simulation_equal(const Network& a, const Network& b,
                             std::size_t num_vectors, std::uint64_t seed) {
  if (a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs()) {
    return false;
  }
  // Map b's inputs/outputs into a's order by name.
  std::vector<std::size_t> b_input_pos(a.num_inputs());
  for (std::size_t i = 0; i < a.num_inputs(); ++i) {
    const std::string& name = a.node(a.inputs()[i]).name;
    bool found = false;
    for (std::size_t j = 0; j < b.num_inputs(); ++j) {
      if (b.node(b.inputs()[j]).name == name) {
        b_input_pos[i] = j;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  std::vector<std::size_t> b_output_pos(a.num_outputs());
  for (std::size_t i = 0; i < a.num_outputs(); ++i) {
    const std::string& name = a.outputs()[i].first;
    bool found = false;
    for (std::size_t j = 0; j < b.num_outputs(); ++j) {
      if (b.outputs()[j].first == name) {
        b_output_pos[i] = j;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }

  Rng rng(seed);
  const std::size_t rounds = (num_vectors + 63) / 64;
  std::vector<std::uint64_t> words_a(a.num_inputs());
  std::vector<std::uint64_t> words_b(b.num_inputs());
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < a.num_inputs(); ++i) {
      words_a[i] = rng.next();
      words_b[b_input_pos[i]] = words_a[i];
    }
    const auto out_a = simulate64(a, words_a);
    const auto out_b = simulate64(b, words_b);
    for (std::size_t i = 0; i < out_a.size(); ++i) {
      if (out_a[i] != out_b[b_output_pos[i]]) return false;
    }
  }
  return true;
}

}  // namespace bds::verify
