// Combinational equivalence checking (the paper's internal verifier,
// "BDS with option -verify"): global BDDs are built for both networks over
// a shared variable space (inputs matched by name) and compared per output
// through BDD canonicity. Like the paper's verifier, the check aborts
// gracefully when global BDDs blow up (C6288-class circuits); random
// simulation (verify/simulate.cpp) covers that case.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "util/budget.hpp"

namespace bds::verify {

enum class CecStatus {
  kEquivalent,
  kInequivalent,
  kAborted,  ///< global BDD exceeded the node budget
};

struct CecResult {
  CecStatus status = CecStatus::kAborted;
  /// On inequivalence: name of the first differing output and one input
  /// assignment (by a's input order) that distinguishes the networks.
  std::string failing_output;
  std::vector<bool> counterexample;

  explicit operator bool() const { return status == CecStatus::kEquivalent; }
};

/// Checks a == b. Inputs and outputs are matched by name; both networks
/// must expose identical input/output name sets. When `budget` is given it
/// is installed on the verifier's BDD manager, so its ceilings and deadline
/// also abort to kAborted (the caller's cue to fall back to simulation)
/// rather than failing the run.
CecResult check_equivalence(
    const net::Network& a, const net::Network& b,
    std::size_t max_live_nodes = 2'000'000,
    std::shared_ptr<const util::ResourceBudget> budget = nullptr);

/// 64-way parallel random simulation; returns false iff a mismatch was
/// observed (a sound inequivalence witness, not a proof of equivalence).
bool random_simulation_equal(const net::Network& a, const net::Network& b,
                             std::size_t num_vectors = 4096,
                             std::uint64_t seed = 1);

/// Word-parallel simulation of one network: returns per-output words where
/// bit i is the output value under input pattern bit i.
std::vector<std::uint64_t> simulate64(
    const net::Network& net, const std::vector<std::uint64_t>& pi_words);

}  // namespace bds::verify
