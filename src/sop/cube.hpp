// Cubes: conjunctions of literals over a fixed variable count, stored as a
// 2-bit positional notation per variable (espresso convention):
//
//   01 -> the cube contains the negative literal (var must be 0)
//   10 -> the cube contains the positive literal (var must be 1)
//   11 -> the variable is absent (don't care within the cube)
//   00 -> the cube is empty (contains no minterm)
//
// This is the representation SIS-style algebraic optimization operates on
// and the local-function format of BLIF network nodes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bds::sop {

enum class Literal : std::uint8_t {
  kEmpty = 0b00,
  kNeg = 0b01,
  kPos = 0b10,
  kAbsent = 0b11,
};

class Cube {
 public:
  /// The universal cube (all variables absent) over n variables.
  explicit Cube(unsigned num_vars = 0);

  unsigned num_vars() const { return num_vars_; }

  Literal get(unsigned v) const;
  void set(unsigned v, Literal lit);

  /// True if any variable position is 00 (no minterms).
  bool is_empty() const;
  /// True if every position is 11 (the tautology cube).
  bool is_full() const;
  /// Number of literal positions (not 11); the cube's literal count.
  unsigned literal_count() const;
  /// Variables with a literal in this cube.
  std::vector<unsigned> literal_vars() const;

  /// Set-containment: true if this cube's minterms include all of c's.
  bool contains(const Cube& c) const;
  /// Intersection of minterm sets (bitwise AND); may be empty.
  Cube meet(const Cube& c) const;
  /// Number of variables where the two cubes have opposite literals.
  unsigned distance(const Cube& c) const;
  /// The largest cube containing both (bitwise OR of positions).
  Cube join(const Cube& c) const;

  /// Algebraic-divisibility: true if this cube's literal set is a superset
  /// of d's literal set with matching polarities.
  bool divisible_by(const Cube& d) const;
  /// Removes d's literals from this cube (requires divisible_by(d)).
  Cube divide(const Cube& d) const;
  /// Adds c's literals to this cube (algebraic product; both must be
  /// disjoint-support for a true algebraic product, but overlapping equal
  /// literals are tolerated).
  Cube times(const Cube& c) const;

  bool eval(const std::vector<bool>& assignment) const;

  bool operator==(const Cube&) const = default;
  /// Lexicographic order on the raw representation, for canonical sorting.
  bool operator<(const Cube& c) const { return words_ < c.words_; }

  /// Espresso/BLIF-style text, e.g. "1-0" (v0=1, v1 absent, v2=0).
  std::string to_string() const;
  /// Parses BLIF cube text ("10-1..."); throws bds::ParseError.
  static Cube parse(const std::string& text);

 private:
  static constexpr unsigned kVarsPerWord = 32;
  unsigned num_vars_;
  std::vector<std::uint64_t> words_;
};

}  // namespace bds::sop
