#include "sop/sop.hpp"

#include <algorithm>
#include <cassert>

namespace bds::sop {

Sop Sop::constant(unsigned num_vars, bool value) {
  Sop s(num_vars);
  if (value) s.cubes_.push_back(Cube(num_vars));
  return s;
}

Sop Sop::literal(unsigned num_vars, unsigned v, bool positive) {
  Cube c(num_vars);
  c.set(v, positive ? Literal::kPos : Literal::kNeg);
  Sop s(num_vars);
  s.cubes_.push_back(c);
  return s;
}

bool Sop::has_full_cube() const {
  return std::any_of(cubes_.begin(), cubes_.end(),
                     [](const Cube& c) { return c.is_full(); });
}

void Sop::add_cube(Cube c) {
  assert(c.num_vars() == num_vars_);
  if (!c.is_empty()) cubes_.push_back(std::move(c));
}

bool Sop::eval(const std::vector<bool>& assignment) const {
  return std::any_of(cubes_.begin(), cubes_.end(),
                     [&](const Cube& c) { return c.eval(assignment); });
}

unsigned Sop::literal_count() const {
  unsigned n = 0;
  for (const Cube& c : cubes_) n += c.literal_count();
  return n;
}

unsigned Sop::literal_occurrences(unsigned v, bool positive) const {
  const Literal want = positive ? Literal::kPos : Literal::kNeg;
  unsigned n = 0;
  for (const Cube& c : cubes_) {
    if (c.get(v) == want) ++n;
  }
  return n;
}

void Sop::minimize_scc() {
  std::erase_if(cubes_, [](const Cube& c) { return c.is_empty(); });
  std::sort(cubes_.begin(), cubes_.end());
  cubes_.erase(std::unique(cubes_.begin(), cubes_.end()), cubes_.end());
  std::vector<Cube> kept;
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    bool covered = false;
    for (std::size_t j = 0; j < cubes_.size() && !covered; ++j) {
      if (i != j && cubes_[j].contains(cubes_[i]) &&
          !(cubes_[i] == cubes_[j])) {
        covered = true;
      }
    }
    if (!covered) kept.push_back(cubes_[i]);
  }
  cubes_ = std::move(kept);
}

void Sop::merge_adjacent() {
  bool changed = true;
  while (changed) {
    changed = false;
    minimize_scc();
    for (std::size_t i = 0; i < cubes_.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < cubes_.size() && !changed; ++j) {
        // Two cubes that differ only in the polarity of one variable and
        // agree elsewhere merge into their join.
        if (cubes_[i].distance(cubes_[j]) == 1) {
          const Cube joined = cubes_[i].join(cubes_[j]);
          // Safe only when the join covers exactly the union: that happens
          // iff the cubes agree on every variable but the clashing one.
          unsigned diffs = 0;
          for (unsigned v = 0; v < num_vars_; ++v) {
            if (cubes_[i].get(v) != cubes_[j].get(v)) ++diffs;
          }
          if (diffs == 1) {
            cubes_[i] = joined;
            cubes_.erase(cubes_.begin() + static_cast<std::ptrdiff_t>(j));
            changed = true;
          }
        }
      }
    }
  }
}

Cube Sop::common_cube() const {
  if (cubes_.empty()) return Cube(num_vars_);
  Cube common = cubes_.front();
  for (std::size_t i = 1; i < cubes_.size(); ++i) {
    common = common.join(cubes_[i]);  // join keeps only shared literals
  }
  return common;
}

bool Sop::is_cube_free() const { return common_cube().is_full(); }

Cube Sop::make_cube_free() {
  const Cube common = common_cube();
  if (!common.is_full()) {
    for (Cube& c : cubes_) c = c.divide(common);
  }
  return common;
}

Sop Sop::divide_by_cube(const Cube& d) const {
  Sop q(num_vars_);
  for (const Cube& c : cubes_) {
    if (c.divisible_by(d)) q.cubes_.push_back(c.divide(d));
  }
  return q;
}

std::pair<Sop, Sop> Sop::divide(const Sop& divisor) const {
  assert(divisor.num_vars_ == num_vars_);
  if (divisor.cubes_.empty()) return {Sop(num_vars_), *this};
  // Weak division: quotient = intersection over divisor cubes d of
  // { c / d : c divisible by d }.
  Sop quotient = divide_by_cube(divisor.cubes_.front());
  quotient.minimize_scc();
  for (std::size_t i = 1; i < divisor.cubes_.size() && !quotient.cubes_.empty();
       ++i) {
    Sop qi = divide_by_cube(divisor.cubes_[i]);
    qi.minimize_scc();
    std::vector<Cube> inter;
    for (const Cube& c : quotient.cubes_) {
      if (std::find(qi.cubes_.begin(), qi.cubes_.end(), c) != qi.cubes_.end()) {
        inter.push_back(c);
      }
    }
    quotient.cubes_ = std::move(inter);
  }
  // Remainder: cubes of *this not covered by divisor * quotient.
  const Sop product = divisor.times(quotient);
  Sop remainder(num_vars_);
  for (const Cube& c : cubes_) {
    if (std::find(product.cubes_.begin(), product.cubes_.end(), c) ==
        product.cubes_.end()) {
      remainder.cubes_.push_back(c);
    }
  }
  return {std::move(quotient), std::move(remainder)};
}

Sop Sop::times(const Sop& o) const {
  assert(o.num_vars_ == num_vars_);
  Sop result(num_vars_);
  for (const Cube& a : cubes_) {
    for (const Cube& b : o.cubes_) {
      Cube p = a.times(b);
      if (!p.is_empty()) result.cubes_.push_back(std::move(p));
    }
  }
  result.minimize_scc();
  return result;
}

Sop Sop::plus(const Sop& o) const {
  assert(o.num_vars_ == num_vars_);
  Sop result = *this;
  result.cubes_.insert(result.cubes_.end(), o.cubes_.begin(), o.cubes_.end());
  result.minimize_scc();
  return result;
}

Sop Sop::cofactor(unsigned v, bool value) const {
  const Literal blocking = value ? Literal::kNeg : Literal::kPos;
  Sop r(num_vars_);
  for (const Cube& c : cubes_) {
    if (c.get(v) == blocking) continue;
    Cube copy = c;
    copy.set(v, Literal::kAbsent);
    r.add_cube(copy);
  }
  return r;
}

Sop Sop::complement() const {
  if (is_constant_zero()) return constant(num_vars_, true);
  if (has_full_cube()) return constant(num_vars_, false);
  // Branch on the most frequent variable (unate recursive paradigm).
  unsigned best_var = support().front();
  unsigned best_occ = 0;
  for (const unsigned v : support()) {
    const unsigned occ =
        literal_occurrences(v, true) + literal_occurrences(v, false);
    if (occ > best_occ) {
      best_occ = occ;
      best_var = v;
    }
  }
  const Sop not1 = cofactor(best_var, true).complement();
  const Sop not0 = cofactor(best_var, false).complement();
  Sop result(num_vars_);
  for (Cube c : not1.cubes_) {
    if (c.get(best_var) == Literal::kAbsent) c.set(best_var, Literal::kPos);
    result.add_cube(c);
  }
  for (Cube c : not0.cubes_) {
    if (c.get(best_var) == Literal::kAbsent) c.set(best_var, Literal::kNeg);
    result.add_cube(c);
  }
  result.minimize_scc();
  return result;
}

std::vector<unsigned> Sop::support() const {
  std::vector<bool> used(num_vars_, false);
  for (const Cube& c : cubes_) {
    for (unsigned v : c.literal_vars()) used[v] = true;
  }
  std::vector<unsigned> result;
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (used[v]) result.push_back(v);
  }
  return result;
}

std::string Sop::to_string(const std::vector<std::string>& var_names) const {
  if (cubes_.empty()) return "0";
  const auto name = [&](unsigned v) {
    return v < var_names.size() ? var_names[v] : "x" + std::to_string(v);
  };
  std::string s;
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    if (i > 0) s += " + ";
    const Cube& c = cubes_[i];
    if (c.is_full()) {
      s += "1";
      continue;
    }
    bool first = true;
    for (unsigned v : c.literal_vars()) {
      if (!first) s += "*";
      first = false;
      if (c.get(v) == Literal::kNeg) s += "!";
      s += name(v);
    }
  }
  return s;
}

}  // namespace bds::sop
