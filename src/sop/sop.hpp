// Sum-of-products covers and the algebraic ("weak") division they support.
// This is the node representation of the Boolean network frontend and the
// data structure the SIS-style baseline optimizes.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sop/cube.hpp"

namespace bds::sop {

class Sop {
 public:
  explicit Sop(unsigned num_vars = 0) : num_vars_(num_vars) {}
  Sop(unsigned num_vars, std::vector<Cube> cubes)
      : num_vars_(num_vars), cubes_(std::move(cubes)) {}

  static Sop constant(unsigned num_vars, bool value);
  /// The single-literal function v or !v.
  static Sop literal(unsigned num_vars, unsigned v, bool positive);

  unsigned num_vars() const { return num_vars_; }
  const std::vector<Cube>& cubes() const { return cubes_; }
  std::size_t cube_count() const { return cubes_.size(); }
  bool is_constant_zero() const { return cubes_.empty(); }
  /// True if some cube is the universal cube (sufficient, not necessary,
  /// condition for tautology).
  bool has_full_cube() const;

  void add_cube(Cube c);
  bool eval(const std::vector<bool>& assignment) const;

  /// Total literal count over all cubes -- the classic SIS cost metric.
  unsigned literal_count() const;
  /// How many cubes contain the given literal.
  unsigned literal_occurrences(unsigned v, bool positive) const;

  /// Removes empty cubes and cubes contained in other cubes, and sorts
  /// cubes canonically.
  void minimize_scc();
  /// Repeatedly merges distance-1 cube pairs that join into a single cube
  /// covering exactly their union, then re-runs minimize_scc().
  void merge_adjacent();

  // ---- algebraic structure --------------------------------------------------

  /// Largest cube dividing every cube of the cover (the "common cube").
  Cube common_cube() const;
  bool is_cube_free() const;
  /// Divides out the common cube, returning it.
  Cube make_cube_free();

  /// Weak (algebraic) division: returns {quotient, remainder} with
  /// *this = divisor * quotient + remainder and quotient maximal.
  std::pair<Sop, Sop> divide(const Sop& divisor) const;
  /// Division by a single cube.
  Sop divide_by_cube(const Cube& d) const;

  /// Algebraic product (assumes disjoint supports for true algebra, but is
  /// computed as the Boolean AND of cube pairs with empty cubes dropped).
  Sop times(const Sop& o) const;
  /// Disjunction: concatenation followed by minimize_scc().
  Sop plus(const Sop& o) const;

  /// All variables appearing in some cube.
  std::vector<unsigned> support() const;

  /// Cofactor with respect to one variable.
  Sop cofactor(unsigned v, bool value) const;
  /// Complement by recursive Shannon expansion (exponential worst case;
  /// meant for the node-sized covers of a Boolean network).
  Sop complement() const;

  bool operator==(const Sop&) const = default;
  std::string to_string(const std::vector<std::string>& var_names = {}) const;

 private:
  unsigned num_vars_;
  std::vector<Cube> cubes_;
};

}  // namespace bds::sop
