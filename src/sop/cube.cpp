#include "sop/cube.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

#include "util/error.hpp"

namespace bds::sop {

Cube::Cube(unsigned num_vars)
    : num_vars_(num_vars),
      words_((num_vars + kVarsPerWord - 1) / kVarsPerWord, ~0ULL) {
  // Clear the bits past num_vars so comparisons are canonical.
  const unsigned tail = num_vars % kVarsPerWord;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << (2 * tail)) - 1;
  }
}

Literal Cube::get(unsigned v) const {
  assert(v < num_vars_);
  const std::uint64_t word = words_[v / kVarsPerWord];
  return static_cast<Literal>((word >> (2 * (v % kVarsPerWord))) & 0b11);
}

void Cube::set(unsigned v, Literal lit) {
  assert(v < num_vars_);
  std::uint64_t& word = words_[v / kVarsPerWord];
  const unsigned shift = 2 * (v % kVarsPerWord);
  word = (word & ~(0b11ULL << shift)) |
         (static_cast<std::uint64_t>(lit) << shift);
}

bool Cube::is_empty() const {
  // A position is 00 iff both its bits are 0: detect via (w | w>>1) missing
  // an odd-position bit.
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (get(v) == Literal::kEmpty) return true;
  }
  return false;
}

bool Cube::is_full() const { return literal_count() == 0; }

unsigned Cube::literal_count() const {
  unsigned count = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    // Positions where the pair is not 11.
    const std::uint64_t pairs = words_[w];
    const std::uint64_t both = (pairs & (pairs >> 1)) & 0x5555555555555555ULL;
    const unsigned vars_here =
        w + 1 < words_.size() ? kVarsPerWord : num_vars_ - w * kVarsPerWord;
    count += vars_here - static_cast<unsigned>(std::popcount(both));
  }
  return count;
}

std::vector<unsigned> Cube::literal_vars() const {
  std::vector<unsigned> vars;
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (get(v) != Literal::kAbsent) vars.push_back(v);
  }
  return vars;
}

bool Cube::contains(const Cube& c) const {
  assert(num_vars_ == c.num_vars_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] | c.words_[w]) != words_[w]) return false;
  }
  return true;
}

Cube Cube::meet(const Cube& c) const {
  assert(num_vars_ == c.num_vars_);
  Cube result(num_vars_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    result.words_[w] = words_[w] & c.words_[w];
  }
  return result;
}

Cube Cube::join(const Cube& c) const {
  assert(num_vars_ == c.num_vars_);
  Cube result(num_vars_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    result.words_[w] = words_[w] | c.words_[w];
  }
  return result;
}

unsigned Cube::distance(const Cube& c) const {
  assert(num_vars_ == c.num_vars_);
  unsigned d = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t m = words_[w] & c.words_[w];
    // Pairs that became 00 in the meet.
    const std::uint64_t neither = ~(m | (m >> 1)) & 0x5555555555555555ULL;
    const unsigned vars_here =
        w + 1 < words_.size() ? kVarsPerWord : num_vars_ - w * kVarsPerWord;
    const std::uint64_t mask =
        vars_here == kVarsPerWord ? ~0ULL : (1ULL << (2 * vars_here)) - 1;
    d += static_cast<unsigned>(std::popcount(neither & mask));
  }
  return d;
}

bool Cube::divisible_by(const Cube& d) const {
  assert(num_vars_ == d.num_vars_);
  // Every literal of d must appear identically in this cube.
  for (unsigned v = 0; v < num_vars_; ++v) {
    const Literal ld = d.get(v);
    if (ld != Literal::kAbsent && get(v) != ld) return false;
  }
  return true;
}

Cube Cube::divide(const Cube& d) const {
  assert(divisible_by(d));
  Cube result = *this;
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (d.get(v) != Literal::kAbsent) result.set(v, Literal::kAbsent);
  }
  return result;
}

Cube Cube::times(const Cube& c) const {
  return meet(c);
}

bool Cube::eval(const std::vector<bool>& assignment) const {
  assert(assignment.size() >= num_vars_);
  for (unsigned v = 0; v < num_vars_; ++v) {
    switch (get(v)) {
      case Literal::kPos:
        if (!assignment[v]) return false;
        break;
      case Literal::kNeg:
        if (assignment[v]) return false;
        break;
      case Literal::kEmpty:
        return false;
      case Literal::kAbsent:
        break;
    }
  }
  return true;
}

std::string Cube::to_string() const {
  std::string s;
  s.reserve(num_vars_);
  for (unsigned v = 0; v < num_vars_; ++v) {
    switch (get(v)) {
      case Literal::kPos:
        s += '1';
        break;
      case Literal::kNeg:
        s += '0';
        break;
      case Literal::kAbsent:
        s += '-';
        break;
      case Literal::kEmpty:
        s += '!';
        break;
    }
  }
  return s;
}

Cube Cube::parse(const std::string& text) {
  Cube c(static_cast<unsigned>(text.size()));
  for (unsigned v = 0; v < text.size(); ++v) {
    switch (text[v]) {
      case '1':
        c.set(v, Literal::kPos);
        break;
      case '0':
        c.set(v, Literal::kNeg);
        break;
      case '-':
      case '2':  // some BLIF writers use '2' for don't care
        break;
      default:
        throw ParseError("bad cube character in \"" + text + "\"");
    }
  }
  return c;
}

}  // namespace bds::sop
