// Barrel shifter / rotator generators (the bshiftN and rot classes).
#include <cassert>
#include <string>
#include <vector>

#include "gen/gen.hpp"

namespace bds::gen {

using net::Network;
using net::NodeId;
using sop::Cube;
using sop::Sop;

namespace {

/// mux(s, hi, lo) as an SOP over fanins (s, hi, lo).
Sop mux3() {
  Sop s(3);
  s.add_cube(Cube::parse("11-"));
  s.add_cube(Cube::parse("0-1"));
  return s;
}

unsigned log2_exact(unsigned width) {
  unsigned bits = 0;
  while ((1u << bits) < width) ++bits;
  assert((1u << bits) == width && "width must be a power of two");
  return bits;
}

}  // namespace

Network barrel_shifter(unsigned width) {
  const unsigned stages = log2_exact(width);
  Network net("bshift" + std::to_string(width));
  std::vector<NodeId> data(width);
  for (unsigned i = 0; i < width; ++i) {
    data[i] = net.add_input("d" + std::to_string(i));
  }
  std::vector<NodeId> amount(stages);
  for (unsigned k = 0; k < stages; ++k) {
    amount[k] = net.add_input("s" + std::to_string(k));
  }

  // Stage k rotates left by 2^k when s_k is set: out[i] = s_k ?
  // in[(i - 2^k) mod width] : in[i].
  std::vector<NodeId> cur = data;
  for (unsigned k = 0; k < stages; ++k) {
    const unsigned shift = 1u << k;
    std::vector<NodeId> next(width);
    for (unsigned i = 0; i < width; ++i) {
      const unsigned src = (i + width - shift) % width;
      next[i] = net.add_node(
          "st" + std::to_string(k) + "_" + std::to_string(i),
          {amount[k], cur[src], cur[i]}, mux3());
    }
    cur = std::move(next);
  }
  for (unsigned i = 0; i < width; ++i) {
    net.set_output("o" + std::to_string(i), cur[i]);
  }
  return net;
}

Network rotator(unsigned width) {
  const unsigned stages = log2_exact(width);
  Network net("rot" + std::to_string(width));
  std::vector<NodeId> data(width);
  for (unsigned i = 0; i < width; ++i) {
    data[i] = net.add_input("d" + std::to_string(i));
  }
  std::vector<NodeId> amount(stages);
  for (unsigned k = 0; k < stages; ++k) {
    amount[k] = net.add_input("s" + std::to_string(k));
  }
  const NodeId dir = net.add_input("dir");  // 0 = left, 1 = right

  std::vector<NodeId> cur = data;
  for (unsigned k = 0; k < stages; ++k) {
    const unsigned shift = 1u << k;
    std::vector<NodeId> next(width);
    for (unsigned i = 0; i < width; ++i) {
      const unsigned left_src = (i + width - shift) % width;
      const unsigned right_src = (i + shift) % width;
      // src = dir ? right : left, taken when s_k; else passthrough.
      const NodeId picked = net.add_node(
          "pk" + std::to_string(k) + "_" + std::to_string(i),
          {dir, cur[right_src], cur[left_src]}, mux3());
      next[i] = net.add_node(
          "st" + std::to_string(k) + "_" + std::to_string(i),
          {amount[k], picked, cur[i]}, mux3());
    }
    cur = std::move(next);
  }
  for (unsigned i = 0; i < width; ++i) {
    net.set_output("o" + std::to_string(i), cur[i]);
  }
  return net;
}

}  // namespace bds::gen
