// Arithmetic generators: multipliers, adders, ALU, comparator.
#include <cassert>
#include <string>
#include <vector>

#include "gen/gen.hpp"

namespace bds::gen {

using net::Network;
using net::NodeId;
using sop::Cube;
using sop::Sop;

namespace {

Sop and2() {
  Sop s(2);
  s.add_cube(Cube::parse("11"));
  return s;
}
Sop or2() {
  Sop s(2);
  s.add_cube(Cube::parse("1-"));
  s.add_cube(Cube::parse("-1"));
  return s;
}
Sop xor2() {
  Sop s(2);
  s.add_cube(Cube::parse("10"));
  s.add_cube(Cube::parse("01"));
  return s;
}
Sop xor3() {
  Sop s(3);
  s.add_cube(Cube::parse("100"));
  s.add_cube(Cube::parse("010"));
  s.add_cube(Cube::parse("001"));
  s.add_cube(Cube::parse("111"));
  return s;
}
/// Majority of three: the full-adder carry.
Sop maj3() {
  Sop s(3);
  s.add_cube(Cube::parse("11-"));
  s.add_cube(Cube::parse("1-1"));
  s.add_cube(Cube::parse("-11"));
  return s;
}

struct FullAdder {
  NodeId sum;
  NodeId carry;
};

FullAdder full_adder(Network& net, const std::string& prefix, NodeId a,
                     NodeId b, NodeId cin) {
  const NodeId s = net.add_node(prefix + "_s", {a, b, cin}, xor3());
  const NodeId c = net.add_node(prefix + "_c", {a, b, cin}, maj3());
  return {s, c};
}

FullAdder half_adder(Network& net, const std::string& prefix, NodeId a,
                     NodeId b) {
  const NodeId s = net.add_node(prefix + "_s", {a, b}, xor2());
  const NodeId c = net.add_node(prefix + "_c", {a, b}, and2());
  return {s, c};
}

}  // namespace

Network ripple_adder(unsigned bits) {
  Network net("rca" + std::to_string(bits));
  std::vector<NodeId> a(bits), b(bits);
  for (unsigned i = 0; i < bits; ++i) a[i] = net.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < bits; ++i) b[i] = net.add_input("b" + std::to_string(i));
  NodeId carry = net::kNoNode;
  for (unsigned i = 0; i < bits; ++i) {
    const std::string p = "fa" + std::to_string(i);
    const FullAdder fa = carry == net::kNoNode
                             ? half_adder(net, p, a[i], b[i])
                             : full_adder(net, p, a[i], b[i], carry);
    net.set_output("s" + std::to_string(i), fa.sum);
    carry = fa.carry;
  }
  net.set_output("cout", carry);
  return net;
}

Network array_multiplier(unsigned n) {
  assert(n >= 1);
  Network net("m" + std::to_string(n) + "x" + std::to_string(n));
  std::vector<NodeId> a(n), b(n);
  for (unsigned i = 0; i < n; ++i) a[i] = net.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < n; ++i) b[i] = net.add_input("b" + std::to_string(i));

  // Partial products pp[i][j] = a[j] & b[i], weight i + j.
  std::vector<std::vector<NodeId>> pp(n, std::vector<NodeId>(n));
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = 0; j < n; ++j) {
      pp[i][j] = net.add_node("pp" + std::to_string(i) + "_" + std::to_string(j),
                              {a[j], b[i]}, and2());
    }
  }

  // Row-by-row ripple-carry accumulation (classic array multiplier).
  // `acc[j]` holds the running sum bit of weight j.
  std::vector<NodeId> acc(2 * n, net::kNoNode);
  for (unsigned j = 0; j < n; ++j) acc[j] = pp[0][j];
  for (unsigned i = 1; i < n; ++i) {
    NodeId carry = net::kNoNode;
    for (unsigned j = 0; j < n; ++j) {
      const unsigned w = i + j;
      const std::string p =
          "r" + std::to_string(i) + "_" + std::to_string(j);
      const NodeId addend = pp[i][j];
      const NodeId current = acc[w];
      FullAdder fa{};
      if (current == net::kNoNode && carry == net::kNoNode) {
        acc[w] = addend;
        continue;
      }
      if (current == net::kNoNode) {
        fa = half_adder(net, p, addend, carry);
      } else if (carry == net::kNoNode) {
        fa = half_adder(net, p, addend, current);
      } else {
        fa = full_adder(net, p, addend, current, carry);
      }
      acc[w] = fa.sum;
      carry = fa.carry;
    }
    // Propagate the final carry of this row into the next weight.
    unsigned w = i + n;
    while (carry != net::kNoNode && w < 2 * n) {
      if (acc[w] == net::kNoNode) {
        acc[w] = carry;
        carry = net::kNoNode;
      } else {
        const FullAdder fa = half_adder(
            net, "cp" + std::to_string(i) + "_" + std::to_string(w), acc[w],
            carry);
        acc[w] = fa.sum;
        carry = fa.carry;
        ++w;
      }
    }
  }
  for (unsigned j = 0; j < 2 * n; ++j) {
    if (acc[j] == net::kNoNode) {
      acc[j] = net.add_node("zero" + std::to_string(j), {},
                            Sop::constant(0, false));
    }
    net.set_output("p" + std::to_string(j), acc[j]);
  }
  return net;
}

Network alu(unsigned bits) {
  Network net("alu" + std::to_string(bits));
  std::vector<NodeId> a(bits), b(bits);
  for (unsigned i = 0; i < bits; ++i) a[i] = net.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < bits; ++i) b[i] = net.add_input("b" + std::to_string(i));
  const NodeId op0 = net.add_input("op0");
  const NodeId op1 = net.add_input("op1");

  // Adder chain.
  std::vector<NodeId> sum(bits);
  NodeId carry = net::kNoNode;
  for (unsigned i = 0; i < bits; ++i) {
    const std::string p = "add" + std::to_string(i);
    const FullAdder fa = carry == net::kNoNode
                             ? half_adder(net, p, a[i], b[i])
                             : full_adder(net, p, a[i], b[i], carry);
    sum[i] = fa.sum;
    carry = fa.carry;
  }

  // Bitwise units and the 4:1 result mux per bit:
  //   op = 00 -> ADD, 01 -> AND, 10 -> OR, 11 -> XOR.
  for (unsigned i = 0; i < bits; ++i) {
    const std::string si = std::to_string(i);
    const NodeId andb = net.add_node("and" + si, {a[i], b[i]}, and2());
    const NodeId orb = net.add_node("or" + si, {a[i], b[i]}, or2());
    const NodeId xorb = net.add_node("xor" + si, {a[i], b[i]}, xor2());
    // mux4(op1, op0, add, and, or, xor)
    Sop mux4(6);  // vars: op1 op0 s0 s1 s2 s3
    mux4.add_cube(Cube::parse("001---"));
    mux4.add_cube(Cube::parse("01-1--"));
    mux4.add_cube(Cube::parse("10--1-"));
    mux4.add_cube(Cube::parse("11---1"));
    const NodeId r = net.add_node("res" + si,
                                  {op1, op0, sum[i], andb, orb, xorb},
                                  std::move(mux4));
    net.set_output("r" + si, r);
  }
  // Carry-out only meaningful for ADD; mask it with the opcode.
  Sop cmask(3);
  cmask.add_cube(Cube::parse("001"));
  const NodeId co =
      net.add_node("co", {op1, op0, carry}, std::move(cmask));
  net.set_output("cout", co);
  return net;
}

Network comparator(unsigned bits) {
  Network net("cmp" + std::to_string(bits));
  std::vector<NodeId> a(bits), b(bits);
  for (unsigned i = 0; i < bits; ++i) a[i] = net.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < bits; ++i) b[i] = net.add_input("b" + std::to_string(i));

  // MSB-first chain: eq_i, lt_i over bits [bits-1 .. i].
  NodeId eq = net::kNoNode;
  NodeId lt = net::kNoNode;
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    const std::string si = std::to_string(i);
    Sop eq1(2);  // a == b
    eq1.add_cube(Cube::parse("00"));
    eq1.add_cube(Cube::parse("11"));
    const NodeId bit_eq = net.add_node("eq" + si, {a[static_cast<unsigned>(i)], b[static_cast<unsigned>(i)]}, std::move(eq1));
    Sop lt1(2);  // a < b
    lt1.add_cube(Cube::parse("01"));
    const NodeId bit_lt = net.add_node("lt" + si, {a[static_cast<unsigned>(i)], b[static_cast<unsigned>(i)]}, std::move(lt1));
    if (eq == net::kNoNode) {
      eq = bit_eq;
      lt = bit_lt;
    } else {
      const NodeId new_lt_term =
          net.add_node("ltt" + si, {eq, bit_lt}, and2());
      lt = net.add_node("ltc" + si, {lt, new_lt_term}, or2());
      eq = net.add_node("eqc" + si, {eq, bit_eq}, and2());
    }
  }
  net.set_output("eq", eq);
  net.set_output("lt", lt);
  Sop nor2(2);
  nor2.add_cube(Cube::parse("00"));
  net.set_output("gt", net.add_node("gt", {eq, lt}, std::move(nor2)));
  return net;
}

Network parity_tree(unsigned width) {
  Network net("par" + std::to_string(width));
  std::vector<NodeId> level;
  for (unsigned i = 0; i < width; ++i) {
    level.push_back(net.add_input("x" + std::to_string(i)));
  }
  unsigned id = 0;
  while (level.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(net.add_node("t" + std::to_string(id++),
                                  {level[i], level[i + 1]}, xor2()));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = next;
  }
  net.set_output("parity", level[0]);
  return net;
}

}  // namespace bds::gen
