// Benchmark circuit generators: deterministic substitutes for the paper's
// MCNC / LGSynth91 / ISCAS85 test cases and for its proprietary
// HDL-to-blif arithmetic circuits (see DESIGN.md §4). Each generator emits
// a plain Boolean network; functional correctness is enforced by
// tests/test_gen.cpp against arithmetic oracles.
#pragma once

#include <cstdint>

#include "net/network.hpp"

namespace bds::gen {

/// bshiftN of Table II: barrel rotator, `width` data bits (power of two),
/// log2(width) shift-amount bits; output is data rotated left.
net::Network barrel_shifter(unsigned width);

/// mNxN of Table II: array multiplier, two n-bit operands, 2n outputs
/// (ripple-carry rows of full adders; XOR-intensive, C6288 class).
net::Network array_multiplier(unsigned n);

/// Ripple-carry adder: n-bit operands, n sum bits and carry-out.
net::Network ripple_adder(unsigned bits);

/// Small ALU (C3540/dalu class): two n-bit operands, 2 opcode bits
/// selecting ADD / AND / OR / XOR; n result bits plus carry-out.
net::Network alu(unsigned bits);

/// Magnitude comparator: eq/lt/gt outputs over two n-bit operands.
net::Network comparator(unsigned bits);

/// Parity tree over `width` inputs (pure XOR benchmark).
net::Network parity_tree(unsigned width);

/// Single-error-correcting circuit over 2^k - k - 1 data bits (C499/C1355
/// class): inputs are data plus Hamming check bits; outputs are the
/// corrected data bits. XOR trees (syndrome) feeding a decoder.
net::Network hamming_corrector(unsigned parity_bits);

/// Priority/interrupt controller (C432 class): `channels` request lines
/// with per-channel enables; grant outputs plus an "any" flag.
net::Network priority_controller(unsigned channels);

/// Random two-level control logic (vda class): seeded PLA with a second
/// level of combining logic.
net::Network random_control(unsigned inputs, unsigned outputs,
                            unsigned cubes_per_output, std::uint64_t seed);

/// Rotator with direction control (rot class): width data bits,
/// log2(width) amount bits, 1 direction bit.
net::Network rotator(unsigned width);

/// Random multilevel structured logic (C880/C432-style "random logic"):
/// a seeded DAG of small AND/OR/NAND/NOR/AOI gates with reconvergent
/// fanout, `levels` deep and roughly `width` gates per level.
net::Network random_multilevel(unsigned inputs, unsigned levels,
                               unsigned width, unsigned outputs,
                               std::uint64_t seed);

}  // namespace bds::gen
