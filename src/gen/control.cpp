// Control-logic generators: priority/interrupt controller (C432 class) and
// seeded random two-level control logic (vda class).
#include <string>
#include <vector>

#include "gen/gen.hpp"
#include "util/rng.hpp"

namespace bds::gen {

using net::Network;
using net::NodeId;
using sop::Cube;
using sop::Sop;

namespace {

Sop and2() {
  Sop s(2);
  s.add_cube(Cube::parse("11"));
  return s;
}
Sop or2() {
  Sop s(2);
  s.add_cube(Cube::parse("1-"));
  s.add_cube(Cube::parse("-1"));
  return s;
}
Sop andnot2() {  // a & !b
  Sop s(2);
  s.add_cube(Cube::parse("10"));
  return s;
}

}  // namespace

Network priority_controller(unsigned channels) {
  Network net("prio" + std::to_string(channels));
  std::vector<NodeId> req(channels), en(channels);
  for (unsigned i = 0; i < channels; ++i) {
    req[i] = net.add_input("req" + std::to_string(i));
  }
  for (unsigned i = 0; i < channels; ++i) {
    en[i] = net.add_input("en" + std::to_string(i));
  }

  // active_i = req_i & en_i ; grant_i = active_i & !any_higher ;
  // (channel 0 has the highest priority).
  NodeId any = net::kNoNode;
  for (unsigned i = 0; i < channels; ++i) {
    const std::string si = std::to_string(i);
    const NodeId active = net.add_node("act" + si, {req[i], en[i]}, and2());
    NodeId grant;
    if (any == net::kNoNode) {
      grant = active;
      any = active;
    } else {
      grant = net.add_node("gr" + si, {active, any}, andnot2());
      any = net.add_node("any" + si, {any, active}, or2());
    }
    net.set_output("grant" + si, grant);
  }
  net.set_output("busy", any);
  return net;
}

Network random_control(unsigned inputs, unsigned outputs,
                       unsigned cubes_per_output, std::uint64_t seed) {
  Rng rng(seed);
  Network net("ctl_i" + std::to_string(inputs) + "_o" +
              std::to_string(outputs) + "_s" + std::to_string(seed));
  std::vector<NodeId> in(inputs);
  for (unsigned i = 0; i < inputs; ++i) {
    in[i] = net.add_input("x" + std::to_string(i));
  }

  // First level: random PLAs, each over a bounded random support cone.
  // Real control blocks (the vda class) are built from many small cones
  // over shared inputs, not from dense functions of every input -- fully
  // random wide functions would be BDD-pathological and unrepresentative.
  const unsigned cone = std::min(inputs, 8u);
  std::vector<NodeId> first;
  for (unsigned o = 0; o < outputs; ++o) {
    // Pick a random support subset for this cone.
    std::vector<NodeId> support;
    std::vector<bool> used(inputs, false);
    while (support.size() < cone) {
      const unsigned v = static_cast<unsigned>(rng.below(inputs));
      if (!used[v]) {
        used[v] = true;
        support.push_back(in[v]);
      }
    }
    Sop s(cone);
    for (unsigned c = 0; c < cubes_per_output; ++c) {
      Cube cube(cone);
      for (unsigned v = 0; v < cone; ++v) {
        switch (rng.below(5)) {
          case 0:
            cube.set(v, sop::Literal::kPos);
            break;
          case 1:
            cube.set(v, sop::Literal::kNeg);
            break;
          default:
            break;
        }
      }
      s.add_cube(cube);
    }
    s.minimize_scc();
    if (s.cubes().empty()) s = Sop::literal(cone, o % cone, true);
    first.push_back(
        net.add_node("pla" + std::to_string(o), support, std::move(s)));
  }

  // Second level: pairwise combining logic (reconvergence, as in real
  // control blocks), producing the primary outputs.
  for (unsigned o = 0; o < outputs; ++o) {
    const NodeId a = first[o];
    const NodeId b = first[(o + 1) % outputs];
    const NodeId x = in[rng.below(inputs)];
    Sop comb(3);
    // (a & x) | (b & !x): a little mux-flavored recombination.
    comb.add_cube(Cube::parse("1-1"));
    comb.add_cube(Cube::parse("-10"));
    const NodeId out = net.add_node("comb" + std::to_string(o), {a, b, x},
                                    std::move(comb));
    net.set_output("f" + std::to_string(o), out);
  }
  return net;
}

Network random_multilevel(unsigned inputs, unsigned levels, unsigned width,
                          unsigned outputs, std::uint64_t seed) {
  Rng rng(seed);
  Network net("rnd_l" + std::to_string(levels) + "_w" +
              std::to_string(width) + "_s" + std::to_string(seed));
  std::vector<NodeId> pool;
  for (unsigned i = 0; i < inputs; ++i) {
    pool.push_back(net.add_input("x" + std::to_string(i)));
  }

  unsigned gate_id = 0;
  for (unsigned l = 0; l < levels; ++l) {
    std::vector<NodeId> level_nodes;
    for (unsigned w = 0; w < width; ++w) {
      // Operands drawn from the whole pool: reconvergent, multilevel.
      const NodeId a = pool[rng.below(pool.size())];
      const NodeId b = pool[rng.below(pool.size())];
      if (a == b) continue;
      Sop func(2);
      switch (rng.below(6)) {
        case 0:  // AND with random input polarities
        case 1: {
          Cube c(2);
          c.set(0, rng.coin() ? sop::Literal::kPos : sop::Literal::kNeg);
          c.set(1, rng.coin() ? sop::Literal::kPos : sop::Literal::kNeg);
          func.add_cube(c);
          break;
        }
        case 2:  // OR with random polarities
        case 3: {
          Cube c1(2), c2(2);
          c1.set(0, rng.coin() ? sop::Literal::kPos : sop::Literal::kNeg);
          c2.set(1, rng.coin() ? sop::Literal::kPos : sop::Literal::kNeg);
          func.add_cube(c1);
          func.add_cube(c2);
          break;
        }
        case 4: {  // 3-input AOI-ish: ab + c'
          const NodeId c3 = pool[rng.below(pool.size())];
          if (c3 == a || c3 == b) {
            Cube c(2);
            c.set(0, sop::Literal::kPos);
            c.set(1, sop::Literal::kPos);
            func.add_cube(c);
            break;
          }
          Sop f3(3);
          f3.add_cube(Cube::parse("11-"));
          f3.add_cube(Cube::parse("--0"));
          level_nodes.push_back(net.add_node("g" + std::to_string(gate_id++),
                                             {a, b, c3}, std::move(f3)));
          continue;
        }
        default: {  // 2:1 mux with a random select from the pool
          const NodeId s = pool[rng.below(pool.size())];
          if (s == a || s == b) {
            Cube c1(2), c2(2);
            c1.set(0, sop::Literal::kPos);
            c2.set(1, sop::Literal::kNeg);
            func.add_cube(c1);
            func.add_cube(c2);
            break;
          }
          Sop f3(3);
          f3.add_cube(Cube::parse("11-"));
          f3.add_cube(Cube::parse("0-1"));
          level_nodes.push_back(net.add_node("g" + std::to_string(gate_id++),
                                             {s, a, b}, std::move(f3)));
          continue;
        }
      }
      level_nodes.push_back(net.add_node("g" + std::to_string(gate_id++),
                                         {a, b}, std::move(func)));
    }
    pool.insert(pool.end(), level_nodes.begin(), level_nodes.end());
  }

  // Outputs from the deepest gates (ensures the whole DAG stays live).
  const unsigned n = static_cast<unsigned>(pool.size());
  for (unsigned o = 0; o < outputs; ++o) {
    const NodeId driver = pool[n - 1 - (o % std::min(n, width * levels))];
    net.set_output("f" + std::to_string(o), driver);
  }
  return net;
}

}  // namespace bds::gen
