// Error-correcting-circuit generator (the C499/C1355 class): Hamming
// syndrome computation (XOR trees) followed by a position decoder that
// flips the offending data bit.
#include <cassert>
#include <string>
#include <vector>

#include "gen/gen.hpp"

namespace bds::gen {

using net::Network;
using net::NodeId;
using sop::Cube;
using sop::Sop;

namespace {

Sop xor2() {
  Sop s(2);
  s.add_cube(Cube::parse("10"));
  s.add_cube(Cube::parse("01"));
  return s;
}

NodeId xor_tree(Network& net, const std::string& prefix,
                std::vector<NodeId> level) {
  assert(!level.empty());
  unsigned id = 0;
  while (level.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(net.add_node(prefix + "_x" + std::to_string(id++),
                                  {level[i], level[i + 1]}, xor2()));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = next;
  }
  return level[0];
}

}  // namespace

Network hamming_corrector(unsigned parity_bits) {
  // Standard Hamming(2^r - 1, 2^r - r - 1): positions 1..2^r - 1; powers
  // of two are check bits, the rest carry data.
  const unsigned r = parity_bits;
  const unsigned total = (1u << r) - 1;
  Network net("ecc" + std::to_string(total));

  std::vector<NodeId> position(total + 1, net::kNoNode);  // 1-indexed
  std::vector<unsigned> data_positions;
  for (unsigned p = 1; p <= total; ++p) {
    const bool is_check = (p & (p - 1)) == 0;
    position[p] = net.add_input((is_check ? "c" : "d") + std::to_string(p));
    if (!is_check) data_positions.push_back(p);
  }

  // Syndrome bit k = XOR of all positions with bit k set (check included).
  std::vector<NodeId> syndrome(r);
  for (unsigned k = 0; k < r; ++k) {
    std::vector<NodeId> members;
    for (unsigned p = 1; p <= total; ++p) {
      if ((p >> k) & 1u) members.push_back(position[p]);
    }
    syndrome[k] = xor_tree(net, "syn" + std::to_string(k), members);
  }

  // Corrected data bit = d_p XOR (syndrome == p).
  for (const unsigned p : data_positions) {
    // Decoder: AND of syndrome bits in the polarity of p.
    Sop decode(r);
    Cube c(r);
    for (unsigned k = 0; k < r; ++k) {
      c.set(k, ((p >> k) & 1u) != 0 ? sop::Literal::kPos
                                    : sop::Literal::kNeg);
    }
    decode.add_cube(c);
    const NodeId hit =
        net.add_node("hit" + std::to_string(p), syndrome, std::move(decode));
    const NodeId fixed = net.add_node("fix" + std::to_string(p),
                                      {position[p], hit}, xor2());
    net.set_output("q" + std::to_string(p), fixed);
  }
  return net;
}

}  // namespace bds::gen
